//! Virtual channels as a first-class layer over the shared router
//! core — the Dally & Seitz alternative the paper weighs and rejects
//! (§2): "They propose adding virtual channels to routers, then
//! breaking loops by allowing some messages to pass other packets.
//! This solution requires multiple packet buffers at each router
//! stage, and severely complicates the router design."
//!
//! This module makes that trade-off measurable. Each physical channel
//! is split into `V` virtual channels, each with its **own** input
//! FIFO and credit counter (the buffer cost the paper objects to),
//! while the physical link still moves at most one flit per cycle (VCs
//! share the wire). The flit movement itself — credits, FIFOs,
//! round-robin output arbitration, faults, retries, duplicate
//! suppression, telemetry and metrics — lives in the one shared
//! [`Engine`]; this module contributes only what is genuinely
//! VC-specific:
//!
//! - [`VcMap`], the per-hop VC *discipline*: given a worm's next
//!   physical channel, which VC does it ride? Three kinds cover the
//!   classic Dally–Seitz orderings: exact per-hop assignments frozen
//!   from a [`VcRouteSet`], the dateline scheme for rings and tori
//!   (promote to VC 1 on crossing the wrap cable, reset on a dimension
//!   change), and static channel classes for e-cube orderings on
//!   meshes, hypercubes and trees.
//! - [`VcRouteSet`], all-pairs `(channel, vc)` routes with the
//!   extended-graph acyclicity check (`is_deadlock_free`): the Dally &
//!   Seitz theorem says the routing is deadlock-free iff the
//!   dependency graph over *(channel, vc)* vertices is acyclic.
//! - [`VcEngine`], a thin construction wrapper that derives the
//!   physical paths from a `VcRouteSet`, installs the matching
//!   [`VcMap`], and hands everything to the shared core. It therefore
//!   inherits the fault model, exactly-once delivery, healing hooks,
//!   live metrics and the sharded parallel step for free — none of
//!   which the old dedicated VC engine had.

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::stats::SimResult;
use crate::traffic::Workload;
use fractanet_graph::{AdjList, ChannelId, Network};
use fractanet_route::RouteSet;
use fractanet_topo::mesh::{PORT_EAST, PORT_NORTH, PORT_SOUTH, PORT_WEST};
use fractanet_topo::ring::{PORT_CW, PORT_NODE0};
use fractanet_topo::{Hypercube, Mesh2D, Ring, Topology, Torus2D};

/// One hop of a virtual-channel route: a physical channel plus the
/// virtual channel to ride on it.
pub type VcHop = (ChannelId, u8);

/// All-pairs virtual-channel routes.
#[derive(Clone, Debug)]
pub struct VcRouteSet {
    paths: Vec<Vec<Vec<VcHop>>>,
    vcs: u8,
}

impl VcRouteSet {
    /// Builds from a per-pair generator.
    pub fn from_pairs(n: usize, vcs: u8, mut f: impl FnMut(usize, usize) -> Vec<VcHop>) -> Self {
        assert!(vcs >= 1);
        let mut paths = Vec::with_capacity(n);
        for s in 0..n {
            let mut row = Vec::with_capacity(n);
            for d in 0..n {
                row.push(if s == d { Vec::new() } else { f(s, d) });
            }
            paths.push(row);
        }
        VcRouteSet { paths, vcs }
    }

    /// Number of end nodes.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether there are no end nodes.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Virtual channels per physical channel.
    pub fn vcs(&self) -> u8 {
        self.vcs
    }

    /// The hop sequence for a pair.
    pub fn path(&self, src: usize, dst: usize) -> &[VcHop] {
        &self.paths[src][dst]
    }

    /// The physical channel sequences, with the VC annotations dropped
    /// — what the shared engine routes on.
    pub fn physical_routes(&self) -> RouteSet {
        RouteSet::from_pairs(self.len(), |s, d| {
            self.paths[s][d].iter().map(|&(c, _)| c).collect()
        })
    }

    /// Dally & Seitz on the extended graph: deadlock-free iff the
    /// dependency graph over *(channel, vc)* vertices is acyclic.
    pub fn is_deadlock_free(&self, net: &Network) -> bool {
        let v = self.vcs as usize;
        let mut g = AdjList::new(net.channel_count() * v);
        for row in &self.paths {
            for p in row {
                for w in p.windows(2) {
                    let a = w[0].0.index() * v + w[0].1 as usize;
                    let b = w[1].0.index() * v + w[1].1 as usize;
                    g.add_edge(a as u32, b as u32);
                }
            }
        }
        g.is_acyclic()
    }
}

/// Clockwise ring routes on `vcs` virtual channels with the dateline
/// discipline: packets ride VC 0 until they traverse the wrap link
/// (router n−1 → 0), from which point they ride VC 1. With `vcs = 1`
/// this degenerates to the deadlocking Fig 1 routing.
pub fn dateline_ring_routes(ring: &Ring, vcs: u8) -> VcRouteSet {
    assert!(
        (1..=2).contains(&vcs),
        "the dateline scheme uses up to 2 VCs"
    );
    let n = ring.len();
    let npr = ring.nodes_per_router();
    let net = ring.net();
    VcRouteSet::from_pairs(ring.end_nodes().len(), vcs, |s, d| {
        let rs = ring.router_of_addr(s);
        let rd = ring.router_of_addr(d);
        let mut hops: Vec<VcHop> = Vec::new();
        // Injection.
        let inject = net.channels_from(ring.end_nodes()[s])[0].0;
        hops.push((inject, 0));
        let mut cur = rs;
        let mut vc = 0u8;
        while cur != rd {
            let ch = net
                .channel_out(ring.router(cur), PORT_CW)
                .expect("ring CW port");
            // Crossing the dateline (the wrap link out of router n-1)
            // promotes the packet to VC 1 when available.
            if cur == n - 1 && vcs > 1 {
                vc = 1;
            }
            hops.push((ch, vc));
            cur = (cur + 1) % n;
        }
        let eject = net
            .channel_out(
                ring.router(rd),
                fractanet_graph::PortId(PORT_NODE0.0 + (d % npr) as u8),
            )
            .expect("attach port");
        hops.push((eject, vc));
        hops
    })
}

/// Minimal X-then-Y torus routing on `vcs` virtual channels with a
/// per-dimension dateline: a packet rides VC 0 within a dimension
/// until it traverses that dimension's wrap cable (between coordinate
/// `size−1` and `0`, in either direction), then VC 1; entering the Y
/// dimension resets to VC 0 (dimension order already breaks X↔Y
/// cycles). With `vcs = 1` the wrap routes close dependency cycles.
pub fn dateline_torus_routes(t: &Torus2D, vcs: u8) -> VcRouteSet {
    assert!(
        (1..=2).contains(&vcs),
        "the dateline scheme uses up to 2 VCs"
    );
    let (cols, rows) = (t.cols(), t.rows());
    let net = t.net();
    VcRouteSet::from_pairs(t.end_nodes().len(), vcs, |s, d| {
        let (sx, sy, _) = t.end_coords(s);
        let (dx, dy, _) = t.end_coords(d);
        let mut hops: Vec<VcHop> = Vec::new();
        let inject = net.channels_from(t.end_nodes()[s])[0].0;
        hops.push((inject, 0));
        // X dimension, minimal direction (ties go east).
        let east = (dx + cols - sx) % cols;
        let west = (sx + cols - dx) % cols;
        let (steps, port, wrap_from) = if east <= west {
            (east, PORT_EAST, cols - 1)
        } else {
            (west, PORT_WEST, 0)
        };
        let mut x = sx;
        let mut vc = 0u8;
        for _ in 0..steps {
            let ch = net
                .channel_out(t.router_at(x, sy), port)
                .expect("torus X port");
            if x == wrap_from && vcs > 1 {
                vc = 1;
            }
            hops.push((ch, vc));
            x = if port == PORT_EAST {
                (x + 1) % cols
            } else {
                (x + cols - 1) % cols
            };
        }
        // Y dimension.
        let north = (dy + rows - sy) % rows;
        let south = (sy + rows - dy) % rows;
        let (steps, port, wrap_from) = if north <= south {
            (north, PORT_NORTH, rows - 1)
        } else {
            (south, PORT_SOUTH, 0)
        };
        let mut y = sy;
        if steps > 0 {
            // Entering a new dimension resets to VC 0 (dimension order
            // already breaks X<->Y cycles); an X-only route keeps its
            // VC through ejection.
            vc = 0;
        }
        for _ in 0..steps {
            let ch = net
                .channel_out(t.router_at(dx, y), port)
                .expect("torus Y port");
            if y == wrap_from && vcs > 1 {
                vc = 1;
            }
            hops.push((ch, vc));
            y = if port == PORT_NORTH {
                (y + 1) % rows
            } else {
                (y + rows - 1) % rows
            };
        }
        let &(eject_rev, _) = net
            .channels_from(t.end_nodes()[d])
            .first()
            .expect("attached");
        hops.push((eject_rev.reverse(), vc));
        hops
    })
}

/// Dimension value meaning "no dimension: keep the current VC" —
/// attach channels (injection and ejection) under a dateline map.
const DIM_KEEP: u8 = u8::MAX;

/// The per-hop virtual-channel discipline the shared engine consults
/// on every head allocation and injection: given the worm's endpoints,
/// its current `(channel, vc)` and the next physical channel, which VC
/// does the next hop ride? Plain data (`Send + Sync`) so the sharded
/// decision scans can consult it from worker threads.
#[derive(Clone, Debug)]
pub struct VcMap {
    vcs: u8,
    kind: VcMapKind,
}

#[derive(Clone, Debug)]
enum VcMapKind {
    /// Exact assignments frozen from a [`VcRouteSet`]:
    /// `vc[src][dst][path_pos]`.
    PerHop { hops: Vec<Vec<Vec<u8>>> },
    /// Dally–Seitz dateline: a worm keeps its VC while it travels
    /// within one dimension, promotes to at least VC 1 when it crosses
    /// a marked (wrap) channel, and resets to VC 0 when the dimension
    /// changes. `dim[ch] == DIM_KEEP` marks attach channels, which
    /// never reset or promote.
    Dateline { promote: Vec<bool>, dim: Vec<u8> },
    /// Static e-cube ordering: each physical channel has a class, and
    /// a worm entering it rides `min(class, vcs − 1)` regardless of
    /// history. Acyclic whenever the route's class sequence is
    /// monotone (dimension-ordered routing).
    Classes { class: Vec<u8> },
}

impl VcMap {
    /// Freezes the exact per-hop VC assignments of a route set.
    pub fn from_vc_routes(routes: &VcRouteSet) -> Self {
        let n = routes.len();
        let mut hops = Vec::with_capacity(n);
        for s in 0..n {
            let mut row = Vec::with_capacity(n);
            for d in 0..n {
                row.push(routes.path(s, d).iter().map(|&(_, vc)| vc).collect());
            }
            hops.push(row);
        }
        VcMap {
            vcs: routes.vcs(),
            kind: VcMapKind::PerHop { hops },
        }
    }

    /// A dateline discipline over explicit per-channel wrap marks and
    /// dimension labels (use [`DIM_KEEP`]-semantics via the topology
    /// helpers below unless building something exotic).
    pub fn dateline(vcs: u8, promote: Vec<bool>, dim: Vec<u8>) -> Self {
        assert!(vcs >= 1);
        assert_eq!(promote.len(), dim.len());
        VcMap {
            vcs,
            kind: VcMapKind::Dateline { promote, dim },
        }
    }

    /// A static class-per-channel discipline.
    pub fn classes(vcs: u8, class: Vec<u8>) -> Self {
        assert!(vcs >= 1);
        VcMap {
            vcs,
            kind: VcMapKind::Classes { class },
        }
    }

    /// Virtual channels per physical channel.
    pub fn vcs(&self) -> u8 {
        self.vcs
    }

    /// The VC the next hop rides. `next_pos` is the path index of
    /// `next` (0 for injection), `cur` the physical channel the head
    /// currently occupies (`None` for injection), `cur_vc` its VC.
    pub fn vc_for(
        &self,
        src: u32,
        dst: u32,
        next_pos: u32,
        cur_vc: u8,
        cur: Option<ChannelId>,
        next: ChannelId,
    ) -> u8 {
        let top = self.vcs - 1;
        let vc = match &self.kind {
            VcMapKind::PerHop { hops } => hops[src as usize][dst as usize][next_pos as usize],
            VcMapKind::Dateline { promote, dim } => {
                let nd = dim[next.index()];
                let mut vc = if nd == DIM_KEEP {
                    cur_vc
                } else {
                    match cur {
                        Some(c) if dim[c.index()] == nd => cur_vc,
                        _ => 0,
                    }
                };
                if promote[next.index()] {
                    vc = vc.max(1);
                }
                vc
            }
            VcMapKind::Classes { class } => class[next.index()],
        };
        vc.min(top)
    }

    /// Replays the discipline over a physical route set, producing the
    /// `(channel, vc)` routes it induces — the bridge to the Dally &
    /// Seitz extended-graph check for lint.
    pub fn annotate(&self, routes: &RouteSet) -> VcRouteSet {
        VcRouteSet::from_pairs(routes.len(), self.vcs, |s, d| {
            let mut cur: Option<ChannelId> = None;
            let mut vc = 0u8;
            routes
                .path(s, d)
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    vc = self.vc_for(s as u32, d as u32, i as u32, vc, cur, c);
                    cur = Some(c);
                    (c, vc)
                })
                .collect()
        })
    }
}

/// The dateline map for a ring: promote on the wrap cable in either
/// direction (CW out of router n−1, CCW out of router 0), keep the VC
/// everywhere else. On clockwise-only routing it induces exactly the
/// assignments of [`dateline_ring_routes`] (those routes never use the
/// CCW wrap); under minimal bidirectional routing both direction
/// cycles get their own dateline, so the extended graph is acyclic
/// with 2 VCs either way.
pub fn dateline_ring_map(ring: &Ring, vcs: u8) -> VcMap {
    let net = ring.net();
    let nch = net.channel_count();
    let mut promote = vec![false; nch];
    let dim = vec![DIM_KEEP; nch];
    if let Some(wrap) = net.channel_out(ring.router(ring.len() - 1), PORT_CW) {
        promote[wrap.index()] = true;
    }
    if let Some(wrap) = net.channel_out(ring.router(0), fractanet_topo::ring::PORT_CCW) {
        promote[wrap.index()] = true;
    }
    VcMap::dateline(vcs, promote, dim)
}

/// The per-dimension dateline map for a 2-D torus: X channels are
/// dimension 0, Y channels dimension 1 (so entering Y resets to VC 0),
/// and the four wrap directions promote. Induces exactly the
/// assignments of [`dateline_torus_routes`].
pub fn dateline_torus_map(t: &Torus2D, vcs: u8) -> VcMap {
    let net = t.net();
    let nch = net.channel_count();
    let mut promote = vec![false; nch];
    let mut dim = vec![DIM_KEEP; nch];
    for c in 0..nch {
        let ch = ChannelId(c as u32);
        let Some((x, y)) = t.coords_of(net.channel_src(ch)) else {
            continue; // injection channel: keep
        };
        let port = net.channel_src_port(ch);
        if port == PORT_EAST {
            dim[c] = 0;
            promote[c] = x == t.cols() - 1;
        } else if port == PORT_WEST {
            dim[c] = 0;
            promote[c] = x == 0;
        } else if port == PORT_NORTH {
            dim[c] = 1;
            promote[c] = y == t.rows() - 1;
        } else if port == PORT_SOUTH {
            dim[c] = 1;
            promote[c] = y == 0;
        } // else: attach (ejection) channel — keep the current VC
    }
    VcMap::dateline(vcs, promote, dim)
}

/// The e-cube class map for a 2-D mesh: X channels class 0, Y channels
/// class 1, attach channels class 0. XY routing visits classes
/// monotonically, so the extended graph is acyclic at any `vcs`.
pub fn ecube_mesh_map(m: &Mesh2D, vcs: u8) -> VcMap {
    let net = m.net();
    let nch = net.channel_count();
    let mut class = vec![0u8; nch];
    for (c, slot) in class.iter_mut().enumerate() {
        let ch = ChannelId(c as u32);
        if !net.is_router(net.channel_src(ch)) {
            continue;
        }
        let port = net.channel_src_port(ch);
        if port == PORT_NORTH || port == PORT_SOUTH {
            *slot = 1;
        }
    }
    VcMap::classes(vcs, class)
}

/// The e-cube class map for a hypercube: a dimension-`d` cube link is
/// class `d mod vcs`, attach channels class 0. E-cube routing resolves
/// dimensions in a fixed order, so class sequences are monotone
/// whenever `vcs ≥ dim` (and load-spread, if not provably ordered,
/// below that).
pub fn ecube_hypercube_map(h: &Hypercube, vcs: u8) -> VcMap {
    let net = h.net();
    let nch = net.channel_count();
    let mut class = vec![0u8; nch];
    for (c, slot) in class.iter_mut().enumerate() {
        let ch = ChannelId(c as u32);
        let src = net.channel_src(ch);
        if h.label_of(src).is_none() {
            continue; // injection channel
        }
        let port = net.channel_src_port(ch);
        if (port.0 as u32) < h.dim() {
            *slot = port.0 % vcs.max(1);
        }
    }
    VcMap::classes(vcs, class)
}

/// The virtual-channel wormhole engine: the shared [`Engine`] routing
/// on the physical projection of a [`VcRouteSet`] with the matching
/// per-hop [`VcMap`] installed. Physical links carry one flit per
/// cycle regardless of VC count; each VC has its own `buffer_depth`
/// FIFO and credit counter. Everything else — faults, retries,
/// duplicate suppression, healing, telemetry, metrics, the sharded
/// parallel step — is inherited from the core unchanged.
pub struct VcEngine<'a> {
    inner: Engine<'a>,
}

impl<'a> VcEngine<'a> {
    /// Creates the engine.
    pub fn new(net: &'a Network, routes: &'a VcRouteSet, cfg: SimConfig) -> Self {
        let inner = Engine::with_owned_routes(net, routes.physical_routes(), cfg)
            .with_vc_map(VcMap::from_vc_routes(routes));
        VcEngine { inner }
    }

    /// Total input-buffer slots across the network — the hardware cost
    /// axis of the virtual-channel trade-off.
    pub fn total_buffer_slots(&self) -> usize {
        self.inner.total_buffer_slots()
    }

    /// Runs the workload; the semantics are exactly
    /// [`crate::engine::Engine::run`].
    pub fn run(self, workload: Workload) -> SimResult {
        self.inner.run(workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEvent;

    fn fig1_cfg() -> SimConfig {
        SimConfig {
            packet_flits: 32,
            buffer_depth: 2,
            max_cycles: 20_000,
            stall_threshold: 300,
            ..SimConfig::default()
        }
    }

    #[test]
    fn one_vc_ring_still_deadlocks() {
        let ring = Ring::new(4, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 1);
        assert!(
            !routes.is_deadlock_free(ring.net()),
            "1 VC keeps the Fig 1 cycle"
        );
        let res = VcEngine::new(ring.net(), &routes, fig1_cfg()).run(Workload::fig1_ring(4));
        assert!(res.deadlock.is_some());
    }

    #[test]
    fn two_vc_dateline_breaks_the_cycle() {
        let ring = Ring::new(4, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 2);
        assert!(
            routes.is_deadlock_free(ring.net()),
            "dateline CDG must be acyclic"
        );
        let res = VcEngine::new(ring.net(), &routes, fig1_cfg()).run(Workload::fig1_ring(4));
        assert!(res.deadlock.is_none(), "{:?}", res.deadlock);
        assert_eq!(res.delivered, 4);
    }

    #[test]
    fn buffer_cost_doubles_with_two_vcs() {
        // The paper's objection, quantified.
        let ring = Ring::new(4, 1, 6).unwrap();
        let one = dateline_ring_routes(&ring, 1);
        let two = dateline_ring_routes(&ring, 2);
        let e1 = VcEngine::new(ring.net(), &one, fig1_cfg());
        let e2 = VcEngine::new(ring.net(), &two, fig1_cfg());
        assert_eq!(e2.total_buffer_slots(), 2 * e1.total_buffer_slots());
    }

    #[test]
    fn larger_ring_all_to_all_completes_with_vcs() {
        let ring = Ring::new(6, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 2);
        assert!(routes.is_deadlock_free(ring.net()));
        let cfg = SimConfig {
            packet_flits: 8,
            buffer_depth: 2,
            max_cycles: 100_000,
            stall_threshold: 2_000,
            ..SimConfig::default()
        };
        let res = VcEngine::new(ring.net(), &routes, cfg).run(Workload::all_to_all_burst(6));
        assert!(res.deadlock.is_none());
        assert_eq!(res.delivered, 30);
    }

    #[test]
    fn vc_engine_is_deterministic() {
        let ring = Ring::new(5, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 2);
        let mk = || {
            let cfg = SimConfig {
                packet_flits: 6,
                max_cycles: 4_000,
                stall_threshold: 2_000,
                ..SimConfig::default()
            };
            VcEngine::new(ring.net(), &routes, cfg).run(Workload::Bernoulli {
                injection_rate: 0.2,
                pattern: crate::traffic::DstPattern::Uniform,
                until_cycle: 2_000,
            })
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.avg_latency, b.avg_latency);
    }

    #[test]
    fn torus_one_vc_is_cyclic_two_vcs_acyclic() {
        let t = Torus2D::new(4, 4, 1, 6).unwrap();
        let one = dateline_torus_routes(&t, 1);
        assert!(
            !one.is_deadlock_free(t.net()),
            "wrap routes must close a cycle on 1 VC"
        );
        let two = dateline_torus_routes(&t, 2);
        assert!(
            two.is_deadlock_free(t.net()),
            "the dateline must break every cycle"
        );
    }

    #[test]
    fn torus_routes_are_minimal_and_deliver() {
        use fractanet_graph::bfs;
        let t = Torus2D::new(4, 3, 1, 6).unwrap();
        let routes = dateline_torus_routes(&t, 2);
        for s in 0..12usize {
            for d in 0..12usize {
                if s == d {
                    continue;
                }
                let p = routes.path(s, d);
                assert_eq!(
                    t.net().channel_dst(p.last().unwrap().0),
                    t.end_nodes()[d],
                    "{s}->{d}"
                );
                let want =
                    bfs::router_hops(t.net(), t.end_nodes()[s], t.end_nodes()[d]).unwrap() as usize;
                assert_eq!(p.len() - 1, want, "{s}->{d} not minimal");
            }
        }
    }

    #[test]
    fn torus_all_to_all_completes_on_two_vcs() {
        let t = Torus2D::new(3, 3, 1, 6).unwrap();
        let routes = dateline_torus_routes(&t, 2);
        let cfg = SimConfig {
            packet_flits: 8,
            buffer_depth: 2,
            max_cycles: 100_000,
            stall_threshold: 2_000,
            ..SimConfig::default()
        };
        let res = VcEngine::new(t.net(), &routes, cfg).run(Workload::all_to_all_burst(9));
        assert!(res.deadlock.is_none(), "{:?}", res.deadlock);
        assert_eq!(res.delivered, 72);
    }

    #[test]
    fn sharded_vc_engine_matches_serial() {
        // A 6×6 torus (>64 physical channels, so threads > 1 genuinely
        // forms shards) under Bernoulli load with telemetry on: the
        // sharded candidate collection must be bit-identical to the
        // serial scan at every thread count.
        let t = Torus2D::new(6, 6, 1, 6).unwrap();
        let routes = dateline_torus_routes(&t, 2);
        let run = |threads: usize| {
            let cfg = SimConfig {
                packet_flits: 8,
                buffer_depth: 2,
                max_cycles: 20_000,
                stall_threshold: 2_000,
                telemetry: fractanet_telemetry::Telemetry::recording(),
                ..SimConfig::default()
            }
            .with_threads(threads);
            VcEngine::new(t.net(), &routes, cfg).run(Workload::Bernoulli {
                injection_rate: 0.3,
                pattern: crate::traffic::DstPattern::Uniform,
                until_cycle: 1_000,
            })
        };
        let oracle = run(1);
        assert!(oracle.delivered > 50, "fixture too quiet to prove parity");
        let oracle = format!("{oracle:?}");
        for threads in [2, 4, 8] {
            assert_eq!(oracle, format!("{:?}", run(threads)), "threads={threads}");
        }
    }

    #[test]
    fn dateline_routes_are_clockwise_and_switch_once() {
        let ring = Ring::new(5, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 2);
        for s in 0..5usize {
            for d in 0..5usize {
                if s == d {
                    continue;
                }
                let p = routes.path(s, d);
                // VC sequence must be non-decreasing (switch at most
                // once, at the dateline).
                for w in p.windows(2) {
                    assert!(w[1].1 >= w[0].1, "{s}->{d}");
                }
                // Wrap routes end on VC 1; non-wrap routes stay on 0.
                let wraps = d < s;
                assert_eq!(p.last().unwrap().1, u8::from(wraps), "{s}->{d}");
            }
        }
    }

    #[test]
    fn dateline_maps_induce_the_route_assignments() {
        // The generic disciplines must reproduce the frozen per-hop
        // assignments exactly: annotate(physical routes) == vc routes.
        let ring = Ring::new(5, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 2);
        let map = dateline_ring_map(&ring, 2);
        let induced = map.annotate(&routes.physical_routes());
        for s in 0..5 {
            for d in 0..5 {
                assert_eq!(induced.path(s, d), routes.path(s, d), "ring {s}->{d}");
            }
        }
        let t = Torus2D::new(4, 3, 1, 6).unwrap();
        let routes = dateline_torus_routes(&t, 2);
        let map = dateline_torus_map(&t, 2);
        let induced = map.annotate(&routes.physical_routes());
        for s in 0..12 {
            for d in 0..12 {
                assert_eq!(induced.path(s, d), routes.path(s, d), "torus {s}->{d}");
            }
        }
    }

    #[test]
    fn bidirectional_ring_map_is_acyclic_on_shortest_routes() {
        use fractanet_route::ringroute::ring_shortest_routes;
        let ring = Ring::new(6, 1, 6).unwrap();
        let rs = RouteSet::from_table(ring.net(), ring.end_nodes(), &ring_shortest_routes(&ring))
            .unwrap();
        assert!(
            !dateline_ring_map(&ring, 1)
                .annotate(&rs)
                .is_deadlock_free(ring.net()),
            "1 VC keeps both direction cycles"
        );
        assert!(
            dateline_ring_map(&ring, 2)
                .annotate(&rs)
                .is_deadlock_free(ring.net()),
            "each direction cycle gets its own dateline"
        );
    }

    #[test]
    fn ecube_mesh_map_is_acyclic_on_xy_routes() {
        use fractanet_route::dor::mesh_xy_routes;
        let m = Mesh2D::new(4, 4, 1, 6).unwrap();
        let table = mesh_xy_routes(&m);
        let rs = RouteSet::from_table(m.net(), m.end_nodes(), &table).unwrap();
        let map = ecube_mesh_map(&m, 2);
        let vcr = map.annotate(&rs);
        assert!(vcr.is_deadlock_free(m.net()));
        // X hops ride VC 0, Y hops VC 1.
        let p = vcr.path(0, 15); // (0,0) -> (3,3): X then Y
        assert!(p.iter().any(|&(_, vc)| vc == 0));
        assert!(p.iter().any(|&(_, vc)| vc == 1));
    }

    #[test]
    fn ecube_hypercube_map_is_acyclic_on_ecube_routes() {
        use fractanet_route::dor::ecube_routes;
        let h = Hypercube::new(3, 1, 6).unwrap();
        let table = ecube_routes(&h);
        let rs = RouteSet::from_table(h.net(), h.end_nodes(), &table).unwrap();
        let map = ecube_hypercube_map(&h, 2);
        assert!(map.annotate(&rs).is_deadlock_free(h.net()));
    }

    // --- Regression tests for drift between the old dedicated VC
    // engine and the shared core (the old engine predated the fault,
    // retry, metrics and measured-throughput work and silently lacked
    // all of it).

    #[test]
    fn vc_engine_reports_real_network_latency() {
        // Old drift: avg_network_latency was set equal to avg_latency.
        // Under queueing, injection happens after creation, so the
        // network component must be strictly smaller on average.
        let ring = Ring::new(6, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 2);
        let cfg = SimConfig {
            packet_flits: 8,
            buffer_depth: 2,
            max_cycles: 100_000,
            stall_threshold: 2_000,
            ..SimConfig::default()
        };
        let res = VcEngine::new(ring.net(), &routes, cfg).run(Workload::all_to_all_burst(6));
        assert_eq!(res.delivered, 30);
        assert!(
            res.avg_network_latency < res.avg_latency,
            "all-to-all bursts queue at sources: network {} vs e2e {}",
            res.avg_network_latency,
            res.avg_latency
        );
    }

    #[test]
    fn vc_engine_recovers_from_a_transient_fault() {
        // Old drift: the dedicated VC engine had no fault machinery at
        // all — a killed link silently wedged the run. The shared core
        // tears the worm down, retries with backoff, and delivers once
        // the outage clears.
        let ring = Ring::new(4, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 2);
        let hit = routes.path(0, 1)[1].0.link();
        let cfg = SimConfig {
            packet_flits: 8,
            buffer_depth: 2,
            max_cycles: 20_000,
            stall_threshold: 2_000,
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::kill_link(hit, 5).transient(400));
        let res = VcEngine::new(ring.net(), &routes, cfg).run(Workload::all_to_all_burst(4));
        assert!(res.recovery.faults_applied >= 1);
        assert!(res.is_recovered(), "{:?}", res.recovery);
        assert_eq!(res.delivered + res.recovery.abandoned.len(), 12);
        assert!(res.recovery.retries >= 1, "the killed path must retry");
    }

    #[test]
    fn vc_engine_throughput_counts_only_measured_cycles() {
        // Old drift: throughput divided by the total cycle count even
        // when a warm-up window excluded early deliveries.
        let ring = Ring::new(4, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 2);
        let cfg = SimConfig {
            packet_flits: 8,
            buffer_depth: 2,
            max_cycles: 10_000,
            stall_threshold: 2_000,
            ..SimConfig::default()
        };
        let res = VcEngine::new(ring.net(), &routes, cfg).run(Workload::all_to_all_burst(4));
        let flits = 12.0 * 8.0; // 12 pairs × 8 flits, warmup 0
        let want = flits / res.cycles as f64 / 4.0;
        assert!(
            (res.throughput - want).abs() < 1e-12,
            "throughput {} vs {}",
            res.throughput,
            want
        );
    }

    #[test]
    fn vc_engine_supports_live_metrics() {
        // Old drift: `metrics` was hardwired to `None`.
        let ring = Ring::new(4, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 2);
        let cfg = fig1_cfg().with_metrics(fractanet_telemetry::MetricsConfig::sampling(50));
        let res = VcEngine::new(ring.net(), &routes, cfg).run(Workload::fig1_ring(4));
        let m = res.metrics.expect("metrics recorder must run");
        assert_eq!(m.totals.delivered, 4);
    }

    #[test]
    fn vc_credit_ledger_is_conserved_at_quiescence() {
        let ring = Ring::new(6, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 2);
        let cfg = SimConfig {
            packet_flits: 8,
            buffer_depth: 2,
            max_cycles: 100_000,
            stall_threshold: 2_000,
            ..SimConfig::default()
        };
        let res = VcEngine::new(ring.net(), &routes, cfg).run(Workload::all_to_all_burst(6));
        assert!(res.credits.consumed > 0);
        assert!(
            res.credits.is_conserved(),
            "consumed {} != returned {}",
            res.credits.consumed,
            res.credits.returned
        );
        assert!(
            res.credits.stalls > 0,
            "depth-2 FIFOs under 8-flit worms must stall on credits"
        );
    }
}
