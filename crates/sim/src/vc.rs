//! Virtual-channel wormhole simulation — the Dally & Seitz alternative
//! the paper weighs and rejects (§2): "They propose adding virtual
//! channels to routers, then breaking loops by allowing some messages
//! to pass other packets. This solution requires multiple packet
//! buffers at each router stage, and severely complicates the router
//! design."
//!
//! This module makes that trade-off measurable: each physical channel
//! is split into `V` virtual channels, each with its **own** input
//! FIFO (the buffer cost the paper objects to), and the physical link
//! still moves at most one flit per cycle (VCs share the wire). The
//! classic dateline discipline on a ring — packets switch from VC 0 to
//! VC 1 when they cross a designated link — breaks the Fig 1 cycle
//! without changing the topology, at the price of doubled buffering.

use crate::config::SimConfig;
use crate::engine::par::{chunk, effective_shards};
use crate::stats::{DeadlockEvent, SimResult};
use crate::traffic::Workload;
use fractanet_graph::{AdjList, ChannelId, Network};
use fractanet_telemetry::Recorder;
use fractanet_topo::ring::{PORT_CW, PORT_NODE0};
use fractanet_topo::{Ring, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::ops::Range;

/// One hop of a virtual-channel route: a physical channel plus the
/// virtual channel to ride on it.
pub type VcHop = (ChannelId, u8);

/// All-pairs virtual-channel routes.
#[derive(Clone, Debug)]
pub struct VcRouteSet {
    paths: Vec<Vec<Vec<VcHop>>>,
    vcs: u8,
}

impl VcRouteSet {
    /// Builds from a per-pair generator.
    pub fn from_pairs(n: usize, vcs: u8, mut f: impl FnMut(usize, usize) -> Vec<VcHop>) -> Self {
        assert!(vcs >= 1);
        let mut paths = Vec::with_capacity(n);
        for s in 0..n {
            let mut row = Vec::with_capacity(n);
            for d in 0..n {
                row.push(if s == d { Vec::new() } else { f(s, d) });
            }
            paths.push(row);
        }
        VcRouteSet { paths, vcs }
    }

    /// Number of end nodes.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether there are no end nodes.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Virtual channels per physical channel.
    pub fn vcs(&self) -> u8 {
        self.vcs
    }

    /// The hop sequence for a pair.
    pub fn path(&self, src: usize, dst: usize) -> &[VcHop] {
        &self.paths[src][dst]
    }

    /// Dally & Seitz on the extended graph: deadlock-free iff the
    /// dependency graph over *(channel, vc)* vertices is acyclic.
    pub fn is_deadlock_free(&self, net: &Network) -> bool {
        let v = self.vcs as usize;
        let mut g = AdjList::new(net.channel_count() * v);
        for row in &self.paths {
            for p in row {
                for w in p.windows(2) {
                    let a = w[0].0.index() * v + w[0].1 as usize;
                    let b = w[1].0.index() * v + w[1].1 as usize;
                    g.add_edge(a as u32, b as u32);
                }
            }
        }
        g.is_acyclic()
    }
}

/// Clockwise ring routes on `vcs` virtual channels with the dateline
/// discipline: packets ride VC 0 until they traverse the wrap link
/// (router n−1 → 0), from which point they ride VC 1. With `vcs = 1`
/// this degenerates to the deadlocking Fig 1 routing.
pub fn dateline_ring_routes(ring: &Ring, vcs: u8) -> VcRouteSet {
    assert!(
        (1..=2).contains(&vcs),
        "the dateline scheme uses up to 2 VCs"
    );
    let n = ring.len();
    let npr = ring.nodes_per_router();
    let net = ring.net();
    VcRouteSet::from_pairs(ring.end_nodes().len(), vcs, |s, d| {
        let rs = ring.router_of_addr(s);
        let rd = ring.router_of_addr(d);
        let mut hops: Vec<VcHop> = Vec::new();
        // Injection.
        let inject = net.channels_from(ring.end_nodes()[s])[0].0;
        hops.push((inject, 0));
        let mut cur = rs;
        let mut vc = 0u8;
        while cur != rd {
            let ch = net
                .channel_out(ring.router(cur), PORT_CW)
                .expect("ring CW port");
            // Crossing the dateline (the wrap link out of router n-1)
            // promotes the packet to VC 1 when available.
            if cur == n - 1 && vcs > 1 {
                vc = 1;
            }
            hops.push((ch, vc));
            cur = (cur + 1) % n;
        }
        let eject = net
            .channel_out(
                ring.router(rd),
                fractanet_graph::PortId(PORT_NODE0.0 + (d % npr) as u8),
            )
            .expect("attach port");
        hops.push((eject, vc));
        hops
    })
}

/// Minimal X-then-Y torus routing on `vcs` virtual channels with a
/// per-dimension dateline: a packet rides VC 0 within a dimension
/// until it traverses that dimension's wrap cable (between coordinate
/// `size−1` and `0`, in either direction), then VC 1; entering the Y
/// dimension resets to VC 0 (dimension order already breaks X↔Y
/// cycles). With `vcs = 1` the wrap routes close dependency cycles.
pub fn dateline_torus_routes(t: &fractanet_topo::Torus2D, vcs: u8) -> VcRouteSet {
    use fractanet_topo::mesh::{PORT_EAST, PORT_NORTH, PORT_SOUTH, PORT_WEST};
    assert!(
        (1..=2).contains(&vcs),
        "the dateline scheme uses up to 2 VCs"
    );
    let (cols, rows) = (t.cols(), t.rows());
    let net = t.net();
    VcRouteSet::from_pairs(t.end_nodes().len(), vcs, |s, d| {
        let (sx, sy, _) = t.end_coords(s);
        let (dx, dy, _) = t.end_coords(d);
        let mut hops: Vec<VcHop> = Vec::new();
        let inject = net.channels_from(t.end_nodes()[s])[0].0;
        hops.push((inject, 0));
        // X dimension, minimal direction (ties go east).
        let east = (dx + cols - sx) % cols;
        let west = (sx + cols - dx) % cols;
        let (steps, port, wrap_from) = if east <= west {
            (east, PORT_EAST, cols - 1)
        } else {
            (west, PORT_WEST, 0)
        };
        let mut x = sx;
        let mut vc = 0u8;
        for _ in 0..steps {
            let ch = net
                .channel_out(t.router_at(x, sy), port)
                .expect("torus X port");
            if x == wrap_from && vcs > 1 {
                vc = 1;
            }
            hops.push((ch, vc));
            x = if port == PORT_EAST {
                (x + 1) % cols
            } else {
                (x + cols - 1) % cols
            };
        }
        // Y dimension.
        let north = (dy + rows - sy) % rows;
        let south = (sy + rows - dy) % rows;
        let (steps, port, wrap_from) = if north <= south {
            (north, PORT_NORTH, rows - 1)
        } else {
            (south, PORT_SOUTH, 0)
        };
        let mut y = sy;
        vc = 0;
        for _ in 0..steps {
            let ch = net
                .channel_out(t.router_at(dx, y), port)
                .expect("torus Y port");
            if y == wrap_from && vcs > 1 {
                vc = 1;
            }
            hops.push((ch, vc));
            y = if port == PORT_NORTH {
                (y + 1) % rows
            } else {
                (y + rows - 1) % rows
            };
        }
        let &(eject_rev, _) = net
            .channels_from(t.end_nodes()[d])
            .first()
            .expect("attached");
        hops.push((eject_rev.reverse(), vc));
        hops
    })
}

const NO_PKT: u32 = u32::MAX;

#[derive(Clone)]
struct VChanState {
    owner: u32,
    entered: u32,
    occ: u8,
    route_pos: u32,
}

impl VChanState {
    fn free() -> Self {
        VChanState {
            owner: NO_PKT,
            entered: 0,
            occ: 0,
            route_pos: 0,
        }
    }
    fn front(&self) -> u32 {
        self.entered - self.occ as u32
    }
}

struct VPacket {
    src: u32,
    dst: u32,
    len: u32,
    created: u64,
    injected: u64,
    sent: u32,
}

/// Candidate moves keyed by target *physical* channel; one flit per
/// wire per cycle.
#[derive(Clone, Copy)]
enum Cand {
    Transfer {
        from_vid: u32,
        to_vid: u32,
        alloc: bool,
    },
    Inject {
        src: u32,
        to_vid: u32,
        alloc: bool,
    },
}

/// Round-robin arbitration key: transfers by upstream vid, injections
/// after all transfers, by source. Unique per candidate, so the
/// post-collection sort is deterministic whatever order shards
/// produced the candidates in.
fn key_of(c: Cand) -> u32 {
    match c {
        Cand::Transfer { from_vid, .. } => from_vid,
        Cand::Inject { src, .. } => u32::MAX / 2 + src,
    }
}

/// One shard's scan output: `(ejects, transfer candidates)` from its
/// vid range plus injection candidates from its source range.
type ShardScan = ((Vec<u32>, Vec<(u32, Cand)>), Vec<(u32, Cand)>);

/// The `Sync` slice of engine state the candidate scans read. The
/// scans are pure — no RNG, no telemetry, no mutation — so they shard
/// across scoped worker threads exactly like the main engine's
/// decision phase ([`crate::engine`]'s `par` module); arbitration and
/// the apply phase stay serial.
struct VcScanView<'e> {
    routes: &'e VcRouteSet,
    vcs: usize,
    chans: &'e [VChanState],
    packets: &'e [VPacket],
    queues: &'e [VecDeque<u32>],
    buffer_depth: u8,
}

impl VcScanView<'_> {
    fn vid(&self, hop: VcHop) -> usize {
        hop.0.index() * self.vcs + hop.1 as usize
    }

    /// The oracle's per-vid scan over one range: ejection-ready vids
    /// plus transfer candidates, in vid order.
    fn scan_vids(&self, range: Range<usize>) -> (Vec<u32>, Vec<(u32, Cand)>) {
        let b = self.buffer_depth;
        let mut ejects: Vec<u32> = Vec::new();
        let mut cands: Vec<(u32, Cand)> = Vec::new();
        for vid in range {
            let vid = vid as u32;
            let st = &self.chans[vid as usize];
            if st.occ == 0 {
                continue;
            }
            let p = &self.packets[st.owner as usize];
            let path = self.routes.path(p.src as usize, p.dst as usize);
            if st.route_pos as usize == path.len() - 1 {
                ejects.push(vid);
                continue;
            }
            let next = path[st.route_pos as usize + 1];
            let next_vid = self.vid(next) as u32;
            let nst = &self.chans[next_vid as usize];
            if st.front() == 0 {
                if nst.owner == NO_PKT && nst.occ < b {
                    cands.push((
                        next.0.index() as u32,
                        Cand::Transfer {
                            from_vid: vid,
                            to_vid: next_vid,
                            alloc: true,
                        },
                    ));
                }
            } else if nst.occ < b {
                cands.push((
                    next.0.index() as u32,
                    Cand::Transfer {
                        from_vid: vid,
                        to_vid: next_vid,
                        alloc: false,
                    },
                ));
            }
        }
        (ejects, cands)
    }

    /// The oracle's injection scan over one source range: each queue
    /// front that can enter its first virtual channel this cycle.
    fn scan_sources(&self, range: Range<usize>) -> Vec<(u32, Cand)> {
        let b = self.buffer_depth;
        let mut cands: Vec<(u32, Cand)> = Vec::new();
        for s in range {
            let Some(&pid) = self.queues[s].front() else {
                continue;
            };
            let p = &self.packets[pid as usize];
            let first = self.routes.path(p.src as usize, p.dst as usize)[0];
            let vid = self.vid(first) as u32;
            let st = &self.chans[vid as usize];
            let alloc = p.sent == 0;
            let ok = if alloc {
                st.owner == NO_PKT && st.occ < b
            } else {
                st.occ < b
            };
            if ok {
                cands.push((
                    first.0.index() as u32,
                    Cand::Inject {
                        src: s as u32,
                        to_vid: vid,
                        alloc,
                    },
                ));
            }
        }
        cands
    }
}

/// The virtual-channel wormhole engine. Physical links carry one flit
/// per cycle regardless of VC count; each VC has its own `buffer_depth`
/// FIFO.
pub struct VcEngine<'a> {
    routes: &'a VcRouteSet,
    cfg: SimConfig,
    vcs: usize,
    nch: usize,
    chans: Vec<VChanState>, // indexed by vid = ch * vcs + vc
    packets: Vec<VPacket>,
    queues: Vec<VecDeque<u32>>,
    rr: Vec<u32>, // per physical channel
    busy: Vec<u64>,
    in_flight: usize,
    delivered: usize,
    delivered_flits: u64,
    latencies: Vec<u64>,
    rng: StdRng,
    tel: Option<Recorder>,
}

impl<'a> VcEngine<'a> {
    /// Creates the engine.
    pub fn new(net: &'a Network, routes: &'a VcRouteSet, cfg: SimConfig) -> Self {
        let vcs = routes.vcs() as usize;
        let nch = net.channel_count();
        let tel = cfg.telemetry.recorder(nch);
        VcEngine {
            routes,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            vcs,
            nch,
            chans: vec![VChanState::free(); nch * vcs],
            packets: Vec::new(),
            queues: vec![VecDeque::new(); routes.len()],
            rr: vec![0; nch],
            busy: vec![0; nch],
            in_flight: 0,
            delivered: 0,
            delivered_flits: 0,
            latencies: Vec::new(),
            tel,
        }
    }

    /// Total input-buffer slots across the network — the hardware cost
    /// axis of the virtual-channel trade-off.
    pub fn total_buffer_slots(&self) -> usize {
        self.nch * self.vcs * self.cfg.buffer_depth as usize
    }

    fn vid(&self, hop: VcHop) -> usize {
        hop.0.index() * self.vcs + hop.1 as usize
    }

    /// Runs the workload; the semantics mirror
    /// [`crate::engine::Engine::run`].
    pub fn run(mut self, mut workload: Workload) -> SimResult {
        let n = self.routes.len();
        let mut idle = 0u64;
        let mut cycle = 0u64;
        let mut generated = 0usize;
        let mut deadlock = None;

        while cycle < self.cfg.max_cycles {
            for (s, d) in workload.generate(cycle, n, self.cfg.packet_flits, &mut self.rng) {
                let id = self.packets.len() as u32;
                self.packets.push(VPacket {
                    src: s as u32,
                    dst: d as u32,
                    len: self.cfg.packet_flits,
                    created: cycle,
                    injected: u64::MAX,
                    sent: 0,
                });
                self.queues[s].push_back(id);
                generated += 1;
            }
            let moves = self.step(cycle);
            let drained = self.in_flight == 0 && self.queues.iter().all(VecDeque::is_empty);
            if workload.finished(cycle) && drained {
                cycle += 1;
                break;
            }
            if moves == 0 && !drained {
                idle += 1;
                if idle >= self.cfg.stall_threshold {
                    deadlock = Some(self.diagnose(cycle));
                    cycle += 1;
                    break;
                }
            } else {
                idle = 0;
            }
            cycle += 1;
        }

        let telemetry = self.tel.take().map(|r| r.finish(cycle, &self.busy));
        let mut lats = self.latencies.clone();
        lats.sort_unstable();
        let avg = if lats.is_empty() {
            0.0
        } else {
            lats.iter().sum::<u64>() as f64 / lats.len() as f64
        };
        SimResult {
            cycles: cycle,
            generated,
            delivered: self.delivered,
            avg_latency: avg,
            avg_network_latency: avg,
            p95_latency: lats
                .get((lats.len().saturating_mul(95) / 100).min(lats.len().saturating_sub(1)))
                .copied()
                .unwrap_or(0),
            max_latency: lats.last().copied().unwrap_or(0),
            throughput: self.delivered_flits as f64 / cycle.max(1) as f64 / n.max(1) as f64,
            channel_busy: self.busy,
            deadlock,
            recovery: crate::stats::RecoveryStats::default(),
            telemetry,
            metrics: None,
        }
    }

    fn step(&mut self, cycle: u64) -> usize {
        let view = VcScanView {
            routes: self.routes,
            vcs: self.vcs,
            chans: &self.chans,
            packets: &self.packets,
            queues: &self.queues,
            buffer_depth: self.cfg.buffer_depth,
        };
        let nvid = self.chans.len();
        let nsrc = self.queues.len();
        let shards = effective_shards(self.cfg.threads, self.nch);
        // Pure candidate collection, sharded when asked. Shard outputs
        // concatenate in shard order = vid/source order, so the merged
        // vectors match the serial scans entry for entry.
        let parts: Vec<ShardScan> = if shards == 1 {
            vec![(view.scan_vids(0..nvid), view.scan_sources(0..nsrc))]
        } else {
            crossbeam::thread::scope(|scope| {
                let view = &view;
                let handles: Vec<_> = (0..shards)
                    .map(|i| {
                        scope.spawn(move |_| {
                            (
                                view.scan_vids(chunk(nvid, shards, i)),
                                view.scan_sources(chunk(nsrc, shards, i)),
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("vc shard scan worker panicked"))
                    .collect()
            })
            .expect("vc shard scan scope")
        };
        let mut ejects: Vec<u32> = Vec::new();
        let mut cands: Vec<(u32, Cand)> = Vec::new(); // (physical target, cand)
        for ((shard_ejects, shard_cands), _) in &parts {
            ejects.extend_from_slice(shard_ejects);
            cands.extend_from_slice(shard_cands);
        }
        for (_, src_cands) in &parts {
            cands.extend_from_slice(src_cands);
        }

        // One grant per physical channel, round-robin over target vids.
        cands.sort_unstable_by_key(|&(phys, c)| (phys, key_of(c)));
        let mut moves = 0usize;
        let mut i = 0;
        let mut grants: Vec<Cand> = Vec::new();
        while i < cands.len() {
            let phys = cands[i].0;
            let mut j = i;
            while j < cands.len() && cands[j].0 == phys {
                j += 1;
            }
            let group = &cands[i..j];
            let last = self.rr[phys as usize];
            let pick = group
                .iter()
                .find(|&&(_, c)| key_of(c) > last)
                .or(group.first())
                .copied()
                .expect("non-empty group");
            self.rr[phys as usize] = key_of(pick.1);
            grants.push(pick.1);
            i = j;
        }

        // Ejections (per physical channel, at most one — group them).
        let mut ejected_phys: Vec<bool> = vec![false; self.nch];
        for vid in ejects {
            let phys = vid as usize / self.vcs;
            if ejected_phys[phys] {
                continue;
            }
            ejected_phys[phys] = true;
            moves += 1;
            let (owner, flit) = {
                let st = &mut self.chans[vid as usize];
                let f = st.front();
                st.occ -= 1;
                (st.owner, f)
            };
            self.delivered_flits += 1;
            if let Some(t) = self.tel.as_mut() {
                t.flit_forwarded(ChannelId((vid as usize / self.vcs) as u32));
            }
            let done = flit == self.packets[owner as usize].len - 1;
            if done {
                self.chans[vid as usize].owner = NO_PKT;
                self.in_flight -= 1;
                self.delivered += 1;
                let p = &self.packets[owner as usize];
                if p.created >= self.cfg.warmup_cycles {
                    self.latencies.push(cycle + 1 - p.created);
                }
                if let Some(t) = self.tel.as_mut() {
                    t.delivered(cycle, owner, cycle + 1 - p.created);
                }
            }
        }

        for g in grants {
            moves += 1;
            match g {
                Cand::Transfer {
                    from_vid,
                    to_vid,
                    alloc,
                } => {
                    let (owner, flit, pos) = {
                        let st = &mut self.chans[from_vid as usize];
                        let f = st.front();
                        st.occ -= 1;
                        (st.owner, f, st.route_pos)
                    };
                    if flit == self.packets[owner as usize].len - 1 {
                        self.chans[from_vid as usize].owner = NO_PKT;
                    }
                    let nst = &mut self.chans[to_vid as usize];
                    if alloc {
                        nst.owner = owner;
                        nst.entered = 0;
                        nst.route_pos = pos + 1;
                    }
                    nst.entered += 1;
                    nst.occ += 1;
                    self.busy[to_vid as usize / self.vcs] += 1;
                    if let Some(t) = self.tel.as_mut() {
                        t.flit_forwarded(ChannelId((from_vid as usize / self.vcs) as u32));
                        if alloc {
                            t.vc_allocated(
                                cycle,
                                owner,
                                ChannelId((to_vid as usize / self.vcs) as u32),
                                (to_vid as usize % self.vcs) as u8,
                            );
                        }
                    }
                }
                Cand::Inject { src, to_vid, alloc } => {
                    let pid = *self.queues[src as usize].front().expect("validated");
                    let (sent_after, len, psrc, pdst) = {
                        let p = &mut self.packets[pid as usize];
                        p.sent += 1;
                        if p.sent == 1 {
                            p.injected = cycle;
                            self.in_flight += 1;
                        }
                        (p.sent, p.len, p.src, p.dst)
                    };
                    let st = &mut self.chans[to_vid as usize];
                    if alloc {
                        st.owner = pid;
                        st.entered = 0;
                        st.route_pos = 0;
                    }
                    st.entered += 1;
                    st.occ += 1;
                    self.busy[to_vid as usize / self.vcs] += 1;
                    if sent_after == 1 {
                        if let Some(t) = self.tel.as_mut() {
                            t.packet_injected(cycle, pid, psrc, pdst, len);
                        }
                    }
                    if sent_after == len {
                        self.queues[src as usize].pop_front();
                    }
                }
            }
        }
        moves
    }

    fn diagnose(&self, cycle: u64) -> DeadlockEvent {
        let mut g = AdjList::new(self.chans.len());
        for (vid, st) in self.chans.iter().enumerate() {
            if st.occ == 0 || st.owner == NO_PKT {
                continue;
            }
            let p = &self.packets[st.owner as usize];
            let path = self.routes.path(p.src as usize, p.dst as usize);
            if (st.route_pos as usize) < path.len() - 1 {
                let next = path[st.route_pos as usize + 1];
                g.add_edge(vid as u32, self.vid(next) as u32);
            }
        }
        let cycle_channels = g
            .find_cycle()
            .map(|vs| {
                vs.into_iter()
                    .map(|vid| ChannelId(vid / self.vcs as u32))
                    .collect()
            })
            .unwrap_or_default();
        DeadlockEvent {
            cycle,
            cycle_channels,
            stuck_packets: self.in_flight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_cfg() -> SimConfig {
        SimConfig {
            packet_flits: 32,
            buffer_depth: 2,
            max_cycles: 20_000,
            stall_threshold: 300,
            ..SimConfig::default()
        }
    }

    #[test]
    fn one_vc_ring_still_deadlocks() {
        let ring = Ring::new(4, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 1);
        assert!(
            !routes.is_deadlock_free(ring.net()),
            "1 VC keeps the Fig 1 cycle"
        );
        let res = VcEngine::new(ring.net(), &routes, fig1_cfg()).run(Workload::fig1_ring(4));
        assert!(res.deadlock.is_some());
    }

    #[test]
    fn two_vc_dateline_breaks_the_cycle() {
        let ring = Ring::new(4, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 2);
        assert!(
            routes.is_deadlock_free(ring.net()),
            "dateline CDG must be acyclic"
        );
        let res = VcEngine::new(ring.net(), &routes, fig1_cfg()).run(Workload::fig1_ring(4));
        assert!(res.deadlock.is_none(), "{:?}", res.deadlock);
        assert_eq!(res.delivered, 4);
    }

    #[test]
    fn buffer_cost_doubles_with_two_vcs() {
        // The paper's objection, quantified.
        let ring = Ring::new(4, 1, 6).unwrap();
        let one = dateline_ring_routes(&ring, 1);
        let two = dateline_ring_routes(&ring, 2);
        let e1 = VcEngine::new(ring.net(), &one, fig1_cfg());
        let e2 = VcEngine::new(ring.net(), &two, fig1_cfg());
        assert_eq!(e2.total_buffer_slots(), 2 * e1.total_buffer_slots());
    }

    #[test]
    fn larger_ring_all_to_all_completes_with_vcs() {
        let ring = Ring::new(6, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 2);
        assert!(routes.is_deadlock_free(ring.net()));
        let cfg = SimConfig {
            packet_flits: 8,
            buffer_depth: 2,
            max_cycles: 100_000,
            stall_threshold: 2_000,
            ..SimConfig::default()
        };
        let res = VcEngine::new(ring.net(), &routes, cfg).run(Workload::all_to_all_burst(6));
        assert!(res.deadlock.is_none());
        assert_eq!(res.delivered, 30);
    }

    #[test]
    fn vc_engine_is_deterministic() {
        let ring = Ring::new(5, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 2);
        let mk = || {
            let cfg = SimConfig {
                packet_flits: 6,
                max_cycles: 4_000,
                stall_threshold: 2_000,
                ..SimConfig::default()
            };
            VcEngine::new(ring.net(), &routes, cfg).run(Workload::Bernoulli {
                injection_rate: 0.2,
                pattern: crate::traffic::DstPattern::Uniform,
                until_cycle: 2_000,
            })
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.avg_latency, b.avg_latency);
    }

    #[test]
    fn torus_one_vc_is_cyclic_two_vcs_acyclic() {
        let t = fractanet_topo::Torus2D::new(4, 4, 1, 6).unwrap();
        let one = dateline_torus_routes(&t, 1);
        assert!(
            !one.is_deadlock_free(t.net()),
            "wrap routes must close a cycle on 1 VC"
        );
        let two = dateline_torus_routes(&t, 2);
        assert!(
            two.is_deadlock_free(t.net()),
            "the dateline must break every cycle"
        );
    }

    #[test]
    fn torus_routes_are_minimal_and_deliver() {
        use fractanet_graph::bfs;
        let t = fractanet_topo::Torus2D::new(4, 3, 1, 6).unwrap();
        let routes = dateline_torus_routes(&t, 2);
        for s in 0..12usize {
            for d in 0..12usize {
                if s == d {
                    continue;
                }
                let p = routes.path(s, d);
                assert_eq!(
                    t.net().channel_dst(p.last().unwrap().0),
                    t.end_nodes()[d],
                    "{s}->{d}"
                );
                let want =
                    bfs::router_hops(t.net(), t.end_nodes()[s], t.end_nodes()[d]).unwrap() as usize;
                assert_eq!(p.len() - 1, want, "{s}->{d} not minimal");
            }
        }
    }

    #[test]
    fn torus_all_to_all_completes_on_two_vcs() {
        let t = fractanet_topo::Torus2D::new(3, 3, 1, 6).unwrap();
        let routes = dateline_torus_routes(&t, 2);
        let cfg = SimConfig {
            packet_flits: 8,
            buffer_depth: 2,
            max_cycles: 100_000,
            stall_threshold: 2_000,
            ..SimConfig::default()
        };
        let res = VcEngine::new(t.net(), &routes, cfg).run(Workload::all_to_all_burst(9));
        assert!(res.deadlock.is_none(), "{:?}", res.deadlock);
        assert_eq!(res.delivered, 72);
    }

    #[test]
    fn sharded_vc_engine_matches_serial() {
        // A 6×6 torus (>64 physical channels, so threads > 1 genuinely
        // forms shards) under Bernoulli load with telemetry on: the
        // sharded candidate collection must be bit-identical to the
        // serial scan at every thread count.
        let t = fractanet_topo::Torus2D::new(6, 6, 1, 6).unwrap();
        let routes = dateline_torus_routes(&t, 2);
        let run = |threads: usize| {
            let cfg = SimConfig {
                packet_flits: 8,
                buffer_depth: 2,
                max_cycles: 20_000,
                stall_threshold: 2_000,
                telemetry: fractanet_telemetry::Telemetry::recording(),
                ..SimConfig::default()
            }
            .with_threads(threads);
            VcEngine::new(t.net(), &routes, cfg).run(Workload::Bernoulli {
                injection_rate: 0.3,
                pattern: crate::traffic::DstPattern::Uniform,
                until_cycle: 1_000,
            })
        };
        let oracle = run(1);
        assert!(oracle.delivered > 50, "fixture too quiet to prove parity");
        let oracle = format!("{oracle:?}");
        for threads in [2, 4, 8] {
            assert_eq!(oracle, format!("{:?}", run(threads)), "threads={threads}");
        }
    }

    #[test]
    fn dateline_routes_are_clockwise_and_switch_once() {
        let ring = Ring::new(5, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 2);
        for s in 0..5usize {
            for d in 0..5usize {
                if s == d {
                    continue;
                }
                let p = routes.path(s, d);
                // VC sequence must be non-decreasing (switch at most
                // once, at the dateline).
                for w in p.windows(2) {
                    assert!(w[1].1 >= w[0].1, "{s}->{d}");
                }
                // Wrap routes end on VC 1; non-wrap routes stay on 0.
                let wraps = d < s;
                assert_eq!(p.last().unwrap().1, u8::from(wraps), "{s}->{d}");
            }
        }
    }
}
