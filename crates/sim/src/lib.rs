//! # fractanet-sim
//!
//! A flit-level, cycle-driven **wormhole routing** simulator for
//! ServerNet-style networks — the tool the paper defers to future work
//! ("Future work will center on simulations of large topologies in
//! order to better understand network performance under heavy
//! loading", §4).
//!
//! The model matches the paper's router description (§1): input FIFO
//! buffers per port, a non-blocking crossbar, and byte-serial links
//! carrying one flit per cycle. Wormhole switching: "the head of a
//! packet is routed before the tail of the packet arrives at that
//! router" — a packet allocates each channel when its head advances
//! into it and releases it when its tail drains out, so a blocked head
//! leaves its tail pinning channels behind it, which is exactly how
//! Figure 1's deadlock arises. Flow control is conservative
//! credit-based: a flit advances only if the downstream input FIFO had
//! space at the start of the cycle.
//!
//! * [`config::SimConfig`] — buffer depth, packet length, cycle/stall
//!   limits, RNG seed.
//! * [`traffic::Workload`] — Bernoulli uniform / permutation / hotspot
//!   processes plus scripted one-shot patterns (the Fig 1 setup and
//!   the §3 adversarial scenarios).
//! * [`engine::Engine`] — the simulator proper, with round-robin
//!   output arbitration and wait-for-graph deadlock detection (via
//!   `fractanet-deadlock`).
//! * [`stats::SimResult`] — latency/throughput/utilization plus the
//!   deadlock verdict.
//! * [`sweep`] — parallel offered-load sweeps (crossbeam scoped
//!   threads) for load-latency curves.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod config;
pub mod engine;
pub mod fault;
mod jsonin;
pub mod pool;
pub mod stats;
pub mod sweep;
pub mod trace;
pub mod traffic;
pub mod vc;

pub use chaos::{sample_schedule, shrink, ChaosSpace, Invariant, Scenario, Violation};
pub use config::SimConfig;
pub use engine::Engine;
pub use fault::{FaultEvent, FaultKind, RetryPolicy};
pub use fractanet_telemetry::{
    Anomaly, AnomalyKind, MetricsConfig, MetricsReport, SpanKind, Telemetry, TelemetryReport,
    TraceEvent,
};
pub use pool::parallel_map;
pub use stats::{CreditStats, DeadlockEvent, RecoveryStats, SimResult};
pub use sweep::{sweep_loads, LoadPoint};
pub use trace::{parse_trace, write_trace, RecordedTrace, TraceExpectation};
pub use traffic::{DstPattern, Workload};
pub use vc::{
    dateline_ring_map, dateline_ring_routes, dateline_torus_map, dateline_torus_routes,
    ecube_hypercube_map, ecube_mesh_map, VcEngine, VcMap, VcRouteSet,
};
