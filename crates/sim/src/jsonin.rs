//! Minimal recursive-descent JSON reader shared by the chaos scenario
//! format and the metrics trace format (the workspace's vendored serde
//! shim has no `Deserialize`). Full JSON syntax for the subset those
//! formats use — objects, arrays, non-negative integers, plain
//! strings.

#[derive(Clone, Debug)]
pub(crate) enum Json {
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }
    pub(crate) fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
    pub(crate) fn as_num(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

pub(crate) fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

pub(crate) fn get_str(obj: &[(String, Json)], key: &str) -> Result<String, String> {
    get(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field {key:?} must be a string"))
}

pub(crate) fn get_num(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    get(obj, key)?
        .as_num()
        .ok_or_else(|| format!("field {key:?} must be a non-negative integer"))
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

pub(crate) fn json_parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(v)
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.ws();
        self.b
            .get(self.i)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}, found {:?}",
                c as char, self.i, self.b[self.i] as char
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected {:?} at offset {}", c as char, self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((k, v));
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                c => return Err(format!("expected ',' or '}}', found {:?}", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                c => return Err(format!("expected ',' or ']', found {:?}", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.i += 1;
                    out.push(match e {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b'r' => '\r',
                        b't' => '\t',
                        _ => return Err(format!("unsupported escape \\{}", e as char)),
                    });
                }
                c => out.push(c as char),
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        s.parse::<u64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {s:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_supported_subset() {
        let v = json_parse(r#"{"a":1,"b":"x","c":[2,{"d":3}]}"#).unwrap();
        let o = v.as_obj().unwrap();
        assert_eq!(get_num(o, "a").unwrap(), 1);
        assert_eq!(get_str(o, "b").unwrap(), "x");
        let arr = get(o, "c").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(2));
        assert_eq!(get_num(arr[1].as_obj().unwrap(), "d").unwrap(), 3);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(json_parse("").is_err());
        assert!(json_parse("{").is_err());
        assert!(json_parse("{\"a\":1}x").is_err());
        assert!(json_parse("-1").is_err());
    }
}
