//! The cycle-driven wormhole engine.
//!
//! State is per *virtual* channel: each unidirectional channel is
//! multiplexed into `cfg.vcs` VCs (1 by default — plain wormhole),
//! and each VC has the input FIFO at its downstream end, an owner
//! (the packet whose worm currently occupies it), and flit
//! accounting. One flit moves per channel per cycle; heads allocate
//! channels through round-robin output arbitration; tails release
//! them. Flow control is credit-based: the upstream arbiter holds one
//! credit per downstream FIFO slot, spends a credit per flit sent,
//! and regains it `credit_delay + 1` cycles after the flit departs
//! downstream. At `credit_delay = 0` this is exactly the historical
//! start-of-cycle space check (`credits = depth − occupancy` holds at
//! every decision point), so the default configuration is
//! bit-identical to the pre-credit engine; a persistent all-idle
//! network with traffic in flight and no credits in flight is a
//! genuine circular wait, and the wait-for graph confirms it.
//!
//! ## Live faults
//!
//! [`SimConfig::faults`](crate::SimConfig) schedules link/router
//! outages applied at the start of their cycle: every worm whose
//! occupied or remaining channels died is torn down (its channels
//! released, its flits discarded), and the source re-queues it under
//! the [`RetryPolicy`](crate::fault::RetryPolicy) — exponential
//! backoff, bounded attempts, then abandonment.
//!
//! ## Routing epochs
//!
//! Route state lives in **epochs**: immutable snapshots of either a
//! dense path matrix or shared destination tables. Each packet carries
//! only its epoch index and resolves hops against that epoch's source
//! — table epochs look the next channel up from the current router's
//! destination row, so nothing is snapshotted per packet. A repairer
//! ([`Engine::with_repairer`] or [`Engine::with_table_repairer`])
//! installs a *new* epoch mid-run; worms in the fabric still resolve
//! against the epoch they were injected under, and the install drains
//! them anyway (mixing two acyclic epochs can deadlock), so only
//! queued and retried packets pick up the repaired routes.

use crate::config::SimConfig;
use crate::fault::FaultKind;
use crate::stats::{CreditStats, DeadlockEvent, RecoveryStats, SimResult};
use crate::traffic::Workload;
use crate::vc::VcMap;
use fractanet_deadlock::WaitGraph;
use fractanet_graph::{ChannelId, LinkId, Network, NodeId};
use fractanet_route::{RouteSet, Routes};
use fractanet_telemetry::{MetricsRecorder, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::sync::Arc;

pub(crate) mod par;

const NO_PKT: u32 = u32::MAX;

/// Salt XORed into the sim seed for the gray-failure RNG stream, so
/// enabling flaky/corrupt links never perturbs the workload or jitter
/// streams (runs without gray faults stay bit-identical).
const GRAY_SEED_SALT: u64 = 0x6EA7_FA11;

#[derive(Clone)]
struct ChanState {
    /// Packet whose worm occupies this virtual channel, or `NO_PKT`.
    owner: u32,
    /// Flits of the owner that have entered (ever) since allocation.
    entered: u32,
    /// Flits currently buffered at the downstream end. `u32`: with
    /// unbounded FIFOs a blocked worm can buffer its whole payload in
    /// one channel.
    occ: u32,
    /// Index of this channel in the owner's path.
    route_pos: u32,
}

impl ChanState {
    fn free() -> Self {
        ChanState {
            owner: NO_PKT,
            entered: 0,
            occ: 0,
            route_pos: 0,
        }
    }
    /// Flit index of the buffer head.
    fn front(&self) -> u32 {
        self.entered - self.occ
    }
}

struct Packet {
    src: u32,
    dst: u32,
    len: u32,
    created: u64,
    injected: u64,
    sent: u32,
    /// Routing epoch frozen at (re)queue time, so table swaps never
    /// re-route a worm that is already in the fabric.
    epoch: u32,
    /// Transmission attempts so far (0 = first try still pending).
    attempts: u32,
    /// The logical packet this transmission carries: self for
    /// originals, the original's id for speculative retransmit copies.
    /// Exactly-once accounting (delivery, abandonment, sequence-number
    /// suppression) keys on the logical id.
    logical: u32,
    /// The worm crossed a corrupting link: it still delivers, but the
    /// destination CRC check will fail and NACK it.
    corrupted: bool,
    /// This transmission's tail ejected (clean, corrupted, or
    /// suppressed) — used to invalidate stale ACK timers.
    done: bool,
    /// (Logical packets only.) The destination accepted a delivery;
    /// every later arrival with this logical id is a duplicate.
    delivered_once: bool,
    /// (Logical packets only.) The retry budget was exhausted and the
    /// packet handed to the failover layer; a straggler copy arriving
    /// afterwards is discarded by the destination's sequence tracking.
    abandoned_once: bool,
}

/// One routing epoch: the immutable route state all packets of that
/// epoch resolve their hops against. Repairs install a new epoch
/// rather than mutating an old one.
enum RouteSource<'a> {
    /// A dense path matrix borrowed at construction.
    Dense(&'a RouteSet),
    /// A dense matrix installed by a legacy repairer.
    DenseOwned(Box<RouteSet>),
    /// Shared destination-indexed tables, walked hop by hop.
    Tables(Arc<Routes>),
}

impl RouteSource<'_> {
    fn dense(&self) -> Option<&RouteSet> {
        match self {
            RouteSource::Dense(r) => Some(r),
            RouteSource::DenseOwned(r) => Some(r),
            RouteSource::Tables(_) => None,
        }
    }

    fn tables(&self) -> &Routes {
        match self {
            RouteSource::Tables(r) => r,
            _ => unreachable!("dense epochs are matched by dense()"),
        }
    }
}

/// A worm head's resolved next hop under its epoch.
enum NextHop {
    /// The head sits on its final channel; the next move ejects.
    Eject,
    /// The head wants this channel next.
    Channel(ChannelId),
}

/// Callback invoked after permanent faults: given the currently-dead
/// links and routers, may return a repaired routing table to install.
type Repairer<'a> = Box<dyn FnMut(&[LinkId], &[NodeId]) -> Option<RouteSet> + 'a>;

/// Table-flavored repairer: returns repaired destination tables to
/// install as a new epoch, shared rather than copied.
type TableRepairer<'a> = Box<dyn FnMut(&[LinkId], &[NodeId]) -> Option<Arc<Routes>> + 'a>;

/// One timeline entry: (cycle, is_repair, kind, permanent).
type TimelineEvent = (u64, bool, FaultKind, bool);

/// One simulation instance. Borrowings keep the network and routes
/// shared across parallel sweep runs.
///
/// ```
/// use fractanet_sim::{Engine, SimConfig, Workload};
/// use fractanet_route::{fractal, RouteSet};
/// use fractanet_topo::{Fractahedron, Topology, Variant};
///
/// let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
/// let routes = fractal::fractal_routes(&f);
/// let rs = RouteSet::from_table(f.net(), f.end_nodes(), &routes).unwrap();
/// let cfg = SimConfig::default().with_packet_flits(8).with_max_cycles(10_000);
/// let result = Engine::new(f.net(), &rs, cfg).run(Workload::all_to_all_burst(8));
/// assert!(result.is_clean());
/// assert_eq!(result.delivered, 56);
/// ```
pub struct Engine<'a> {
    net: &'a Network,
    /// Routing epochs, oldest first; the last entry is current.
    epochs: Vec<RouteSource<'a>>,
    /// End nodes in address order — required by table epochs, unused
    /// by dense ones.
    ends: Option<Vec<NodeId>>,
    /// Addressable end-node count.
    n_addr: usize,
    cfg: SimConfig,
    /// Per-virtual-channel state, indexed `vid = phys * vcs + vc`. At
    /// `vcs == 1`, vid and physical channel index coincide.
    chans: Vec<ChanState>,
    packets: Vec<Packet>,
    queues: Vec<VecDeque<u32>>,
    /// Round-robin pointer per virtual channel: last granted upstream.
    rr: Vec<u32>,
    /// Virtual channels multiplexed over each physical channel.
    vcs: usize,
    /// Next-hop VC assignment, required when `vcs > 1`; absent, every
    /// hop rides VC 0.
    vcmap: Option<VcMap>,
    /// Credits the upstream arbiter holds per virtual channel — the
    /// downstream FIFO slots it may still fill. Maintains
    /// `credits + occ + in-flight returns == buffer_depth`.
    credits: Vec<u32>,
    /// Credit returns in flight: `(due_cycle, vid)`, FIFO (pushes are
    /// monotone in due cycle). Empty whenever `credit_delay == 0`.
    pending_credits: VecDeque<(u64, u32)>,
    credits_consumed: u64,
    credits_returned: u64,
    credit_stalls: u64,
    /// One-flit-per-physical-wire claim stamps (`cycle + 1` = claimed
    /// this cycle). Consulted only at `vcs > 1`: with a single VC the
    /// per-wire candidate sets are disjoint by ownership.
    wire_stamp: Vec<u64>,
    /// Like `wire_stamp`, for the destination node's ingest port
    /// (ejections of distinct VCs of one attach channel).
    eject_stamp: Vec<u64>,
    busy: Vec<u64>,
    in_flight: usize,
    delivered: usize,
    delivered_flits_measured: u64,
    latencies: Vec<u64>,
    net_latencies: Vec<u64>,
    rng: StdRng,
    // Fault machinery.
    timeline: Vec<TimelineEvent>,
    next_event: usize,
    link_fault_ct: Vec<u32>,
    router_fault_ct: Vec<u32>,
    chan_dead: Vec<bool>,
    first_fault: Option<u64>,
    pending_retries: BinaryHeap<Reverse<(u64, u32)>>,
    retry_rng: StdRng,
    // Gray-failure machinery: per-link flaky/corrupt probabilities (‰)
    // toggled by timeline events, a count of active gray faults (the
    // per-cycle scan is skipped entirely at zero), and a dedicated RNG
    // stream so gray draws never perturb the other streams.
    flaky_pm: Vec<u16>,
    corrupt_pm: Vec<u16>,
    gray_active: u32,
    gray_rng: StdRng,
    /// Armed ACK timers, `(fire_cycle, packet, attempts_when_armed)` —
    /// only populated when `cfg.ack_retransmit` is on.
    ack_timers: BinaryHeap<Reverse<(u64, u32, u32)>>,
    repairer: Option<Repairer<'a>>,
    table_repairer: Option<TableRepairer<'a>>,
    lint_ends: Option<Vec<NodeId>>,
    rec: RecoveryStats,
    /// Telemetry recorder — `Some` iff `cfg.telemetry` is recording.
    /// Every instrumentation site is gated on this option, so a
    /// disabled run pays one branch per site and nothing else.
    tel: Option<Recorder>,
    /// Live-metrics recorder — `Some` iff `cfg.metrics` is on. Every
    /// emit and the periodic sample run at serial commit points only
    /// (never inside the sharded scan), so metrics are inert: results
    /// are bit-identical on/off at every thread width.
    met: Option<MetricsRecorder>,
}

impl<'a> Engine<'a> {
    /// Creates an engine over a routed network (dense path matrix).
    pub fn new(net: &'a Network, routes: &'a RouteSet, cfg: SimConfig) -> Self {
        Self::build(net, RouteSource::Dense(routes), None, routes.len(), cfg)
    }

    /// Creates an engine over canonical destination tables: packets
    /// carry no path snapshot at all, every hop is looked up from the
    /// shared tables. `ends` is the end-node address order the tables
    /// are indexed by.
    ///
    /// ```
    /// use fractanet_sim::{Engine, SimConfig, Workload};
    /// use fractanet_route::fractal;
    /// use fractanet_topo::{Fractahedron, Topology, Variant};
    /// use std::sync::Arc;
    ///
    /// let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
    /// let routes = Arc::new(fractal::fractal_routes(&f));
    /// let cfg = SimConfig::default().with_packet_flits(8).with_max_cycles(10_000);
    /// let result = Engine::with_tables(f.net(), f.end_nodes(), routes, cfg)
    ///     .run(Workload::all_to_all_burst(8));
    /// assert!(result.is_clean());
    /// assert_eq!(result.delivered, 56);
    /// ```
    pub fn with_tables(
        net: &'a Network,
        ends: &[NodeId],
        routes: Arc<Routes>,
        cfg: SimConfig,
    ) -> Self {
        Self::build(
            net,
            RouteSource::Tables(routes),
            Some(ends.to_vec()),
            ends.len(),
            cfg,
        )
    }

    fn build(
        net: &'a Network,
        source: RouteSource<'a>,
        ends: Option<Vec<NodeId>>,
        n: usize,
        cfg: SimConfig,
    ) -> Self {
        let nch = net.channel_count();
        let rng = StdRng::seed_from_u64(cfg.seed);
        let retry_rng = StdRng::seed_from_u64(cfg.retry.jitter_seed);
        let gray_rng = StdRng::seed_from_u64(cfg.seed ^ GRAY_SEED_SALT);
        let mut timeline: Vec<TimelineEvent> = Vec::with_capacity(cfg.faults.len() * 2);
        for f in &cfg.faults {
            // Brownouts expand into their alternating down/up phases
            // here, so the per-cycle machinery only ever sees plain
            // transient link outages.
            if let FaultKind::Brownout { link, down, up } = f.kind {
                if down == 0 || up == 0 {
                    continue; // degenerate; the constructor debug-asserts
                }
                let end = f.repair_cycle.unwrap_or(cfg.max_cycles);
                let mut t = f.at_cycle;
                while t < end {
                    timeline.push((t, false, FaultKind::Link(link), false));
                    timeline.push(((t + down).min(end), true, FaultKind::Link(link), false));
                    t += down + up;
                }
                continue;
            }
            timeline.push((f.at_cycle, false, f.kind, f.is_permanent()));
            if let Some(rc) = f.repair_cycle {
                timeline.push((rc, true, f.kind, false));
            }
        }
        timeline.sort_by_key(|&(cycle, is_repair, _, _)| (cycle, is_repair));
        let tel = cfg.telemetry.recorder(nch);
        let met = cfg.metrics.recorder(net, n, cfg.retry.max_retries);
        let vcs = cfg.vcs.max(1) as usize;
        let nv = nch * vcs;
        let depth = cfg.buffer_depth;
        Engine {
            net,
            epochs: vec![source],
            ends,
            n_addr: n,
            cfg,
            chans: vec![ChanState::free(); nv],
            packets: Vec::new(),
            queues: vec![VecDeque::new(); n],
            rr: vec![0; nv],
            vcs,
            vcmap: None,
            credits: vec![depth; nv],
            pending_credits: VecDeque::new(),
            credits_consumed: 0,
            credits_returned: 0,
            credit_stalls: 0,
            wire_stamp: vec![0; nch],
            eject_stamp: vec![0; nch],
            busy: vec![0; nch],
            in_flight: 0,
            delivered: 0,
            delivered_flits_measured: 0,
            latencies: Vec::new(),
            net_latencies: Vec::new(),
            rng,
            timeline,
            next_event: 0,
            link_fault_ct: vec![0; net.link_count()],
            router_fault_ct: vec![0; net.node_count()],
            chan_dead: vec![false; nch],
            first_fault: None,
            pending_retries: BinaryHeap::new(),
            retry_rng,
            flaky_pm: vec![0; net.link_count()],
            corrupt_pm: vec![0; net.link_count()],
            gray_active: 0,
            gray_rng,
            ack_timers: BinaryHeap::new(),
            repairer: None,
            table_repairer: None,
            lint_ends: None,
            rec: RecoveryStats::default(),
            tel,
            met,
        }
    }

    /// Creates an engine that owns its dense path matrix — the
    /// [`Engine::new`] flavor for callers that build routes on the fly
    /// (e.g. the VC layer deriving physical paths from a VC route
    /// set).
    pub fn with_owned_routes(net: &'a Network, routes: RouteSet, cfg: SimConfig) -> Self {
        let n = routes.len();
        Self::build(net, RouteSource::DenseOwned(Box::new(routes)), None, n, cfg)
    }

    /// Installs a virtual-channel map: every physical channel is split
    /// into `map.vcs()` VCs with their own FIFOs, owners and credits,
    /// and each hop's VC is chosen by the map (Dally–Seitz ordering,
    /// per-hop assignments, …). Overrides `cfg.vcs` and resizes the
    /// per-VC state; call before [`Engine::run`].
    pub fn with_vc_map(mut self, map: VcMap) -> Self {
        let vcs = map.vcs().max(1);
        self.cfg.vcs = vcs;
        self.vcs = vcs as usize;
        let nv = self.net.channel_count() * self.vcs;
        self.chans = vec![ChanState::free(); nv];
        self.rr = vec![0; nv];
        self.credits = vec![self.cfg.buffer_depth; nv];
        self.vcmap = Some(map);
        self
    }

    /// Total input-FIFO slots the configuration provisions: one FIFO
    /// of `buffer_depth` flits per virtual channel. The buffer-cost
    /// axis of the VC-vs-turn-disable comparison.
    pub fn total_buffer_slots(&self) -> usize {
        self.chans.len() * self.cfg.buffer_depth as usize
    }

    /// Installs a self-healing hook: after each cycle that applies a
    /// *permanent* fault, the repairer sees the currently-dead links
    /// and routers and may return a regenerated routing table, which
    /// the engine installs for all queued and future packets (in-flight
    /// worms keep their snapshotted paths). The caller is responsible
    /// for certifying the table deadlock-free before returning it.
    pub fn with_repairer(
        mut self,
        f: impl FnMut(&[LinkId], &[NodeId]) -> Option<RouteSet> + 'a,
    ) -> Self {
        self.repairer = Some(Box::new(f));
        self
    }

    /// Table-flavored [`with_repairer`](Engine::with_repairer): the
    /// hook returns repaired destination tables, installed as a new
    /// shared epoch without tracing a single path. Requires a
    /// table-routed engine ([`Engine::with_tables`]); when both
    /// repairer flavors are set, the dense one wins.
    pub fn with_table_repairer(
        mut self,
        f: impl FnMut(&[LinkId], &[NodeId]) -> Option<Arc<Routes>> + 'a,
    ) -> Self {
        assert!(
            self.ends.is_some(),
            "table repairers need a table-routed engine (Engine::with_tables)"
        );
        self.table_repairer = Some(Box::new(f));
        self
    }

    /// The current (latest-installed) routing epoch.
    fn cur_epoch(&self) -> u32 {
        (self.epochs.len() - 1) as u32
    }

    /// Physical channel of a virtual-channel index.
    #[inline]
    fn phys(&self, vid: u32) -> ChannelId {
        ChannelId(vid / self.vcs as u32)
    }

    /// Spends one credit for a flit entering `vid`'s downstream FIFO.
    #[inline]
    fn consume_credit(&mut self, vid: u32) {
        debug_assert!(self.credits[vid as usize] > 0, "credit double-spend");
        self.credits[vid as usize] -= 1;
        self.credits_consumed += 1;
    }

    /// Returns one credit for a flit leaving `vid`'s downstream FIFO
    /// (or discarded by a teardown). Instantaneous at
    /// `credit_delay == 0` — the historical space-check semantics —
    /// otherwise the return travels upstream and lands `delay + 1`
    /// cycles later.
    #[inline]
    fn return_credit(&mut self, vid: u32, cycle: u64) {
        self.credits_returned += 1;
        if self.cfg.credit_delay == 0 {
            self.credits[vid as usize] += 1;
        } else {
            self.pending_credits
                .push_back((cycle + 1 + self.cfg.credit_delay, vid));
        }
    }

    /// Lands every in-flight credit return due by `cycle`; returns how
    /// many landed (run-loop liveness: landing credits is progress).
    fn drain_due_credits(&mut self, cycle: u64) -> usize {
        let mut landed = 0;
        while let Some(&(due, vid)) = self.pending_credits.front() {
            if due > cycle {
                break;
            }
            self.pending_credits.pop_front();
            self.credits[vid as usize] += 1;
            landed += 1;
        }
        landed
    }

    /// Resolves the next hop for a worm head occupying `ch` at route
    /// position `pos` — a dense epoch indexes its frozen path, a table
    /// epoch reads the downstream router's destination entry.
    fn next_hop(&self, p: &Packet, ch: ChannelId, pos: u32) -> NextHop {
        self.scan_view().next_hop(p, ch, pos)
    }

    /// Whether the packet's route under its epoch is unusable: absent
    /// (severed pair, missing table entry, forwarding loop) or crossing
    /// a currently-dead channel. Checked before injection.
    fn route_dead_or_missing(&self, p: &Packet) -> bool {
        self.scan_view().route_dead_or_missing(p)
    }

    /// Whether any channel the worm has yet to traverse — beyond its
    /// head on `ch` at route position `pos` — is currently dead.
    fn remainder_dead(&self, p: &Packet, ch: ChannelId, pos: u32) -> bool {
        self.scan_view().remainder_dead(p, ch, pos)
    }

    /// Debug-assertion guard for repairers that promise *certified*
    /// tables: in debug builds, every repairer-returned table is
    /// statically linted (coverage, liveness, well-formedness, CDG
    /// acyclicity — fault-aware against the currently-dead set) before
    /// installation, and an unclean table panics. Release builds skip
    /// the check entirely. `ends` is the end-node address order the
    /// tables are indexed by. Do not enable for repairers that
    /// intentionally return partial or stale tables.
    pub fn with_lint_on_install(mut self, ends: &[NodeId]) -> Self {
        self.lint_ends = Some(ends.to_vec());
        self
    }

    /// Runs `workload` to completion (or `max_cycles`, or deadlock) and
    /// returns the aggregate result.
    pub fn run(mut self, mut workload: Workload) -> SimResult {
        let n = self.n_addr;
        let mut idle_cycles = 0u64;
        let mut cycle = 0u64;
        let mut generated = 0usize;
        let mut deadlock = None;

        while cycle < self.cfg.max_cycles {
            // 0. Outages and repairs scheduled for this cycle, then
            //    retries whose backoff expired.
            if self.next_event < self.timeline.len() {
                self.apply_fault_events(cycle);
            }
            self.apply_gray_failures(cycle);
            self.release_due_retries(cycle);
            self.fire_ack_timeouts(cycle);
            // Credit returns that finished their upstream trip become
            // visible to this cycle's decisions. No-op at delay 0.
            self.drain_due_credits(cycle);

            // 1. Traffic.
            for (s, d) in workload.generate(cycle, n, self.cfg.packet_flits, &mut self.rng) {
                let id = self.packets.len() as u32;
                self.packets.push(Packet {
                    src: s as u32,
                    dst: d as u32,
                    len: self.cfg.packet_flits,
                    created: cycle,
                    injected: u64::MAX,
                    sent: 0,
                    epoch: self.cur_epoch(),
                    attempts: 0,
                    logical: id,
                    corrupted: false,
                    done: false,
                    delivered_once: false,
                    abandoned_once: false,
                });
                self.queues[s].push_back(id);
                generated += 1;
                if self.first_fault.is_some() {
                    self.rec.post_fault_generated += 1;
                }
                if let Some(m) = self.met.as_mut() {
                    m.generated(cycle, s, d);
                }
            }
            // Queue heads that can no longer be routed — checked after
            // generation so a packet created this cycle never reaches
            // the injection logic with an empty or fault-crossing path.
            self.flush_unroutable_heads(cycle);

            // 2. One simulation step: the serial oracle, or the
            //    sharded scan with a serial replay when `cfg.threads`
            //    asks for workers. Both are bit-identical by contract
            //    (enforced by the `parallel_and_serial_engines_agree`
            //    proptest), so the knob only affects wall-clock.
            let moves = if self.cfg.threads > 1 {
                self.step_parallel(cycle)
            } else {
                self.step(cycle)
            };

            // 2b. Periodic metrics sample — at the serial commit
            //     point, after this cycle's state is final, so the
            //     registry observes identical values at every thread
            //     width.
            if let Some(m) = self.met.as_mut() {
                if m.due(cycle) {
                    let epoch = (self.epochs.len() - 1) as u64;
                    m.sample(cycle, self.in_flight as u64, epoch, &self.busy);
                }
            }

            // 3. Termination checks.
            let queues_empty = self.queues.iter().all(VecDeque::is_empty);
            let drained = self.in_flight == 0 && queues_empty && self.pending_retries.is_empty();
            if workload.finished(cycle) && drained {
                cycle += 1;
                break;
            }
            if moves == 0 && !drained {
                if (self.in_flight == 0 && queues_empty) || !self.pending_credits.is_empty() {
                    // Nothing in the fabric (waiting out retry backoff
                    // timers), or credits still in flight whose landing
                    // may unblock a worm — neither is a stall. The
                    // latter delays a true-deadlock verdict by at most
                    // `credit_delay` cycles.
                    idle_cycles = 0;
                } else {
                    idle_cycles += 1;
                    if idle_cycles >= self.cfg.stall_threshold {
                        let verdict = self.diagnose_deadlock(cycle);
                        if let Some(m) = self.met.as_mut() {
                            m.deadlock(
                                cycle,
                                format!(
                                    "{} stuck packets, {}-channel wait cycle",
                                    verdict.stuck_packets,
                                    verdict.cycle_channels.len()
                                ),
                            );
                        }
                        deadlock = Some(verdict);
                        cycle += 1;
                        break;
                    }
                }
            } else {
                idle_cycles = 0;
            }
            cycle += 1;
        }

        self.finish(cycle, generated, deadlock)
    }

    /// Applies every timeline event scheduled for `cycle`: updates the
    /// dead masks, tears down truncated worms, and (after permanent
    /// faults) offers the repairer a chance to install new tables.
    fn apply_fault_events(&mut self, cycle: u64) {
        let mut topo_changed = false;
        let mut permanent_applied = false;
        let mut outage_applied = false;
        while self.next_event < self.timeline.len() && self.timeline[self.next_event].0 == cycle {
            let (_, is_repair, kind, permanent) = self.timeline[self.next_event];
            self.next_event += 1;
            let delta: i64 = if is_repair { -1 } else { 1 };
            let mut gray = false;
            match kind {
                FaultKind::Link(l) => {
                    let ct = &mut self.link_fault_ct[l.index()];
                    *ct = (*ct as i64 + delta).max(0) as u32;
                    topo_changed = true;
                }
                FaultKind::Router(r) => {
                    let ct = &mut self.router_fault_ct[r.index()];
                    *ct = (*ct as i64 + delta).max(0) as u32;
                    topo_changed = true;
                }
                FaultKind::FlakyLink {
                    link,
                    drop_per_mille,
                } => {
                    gray = true;
                    let slot = &mut self.flaky_pm[link.index()];
                    if is_repair {
                        if *slot != 0 {
                            self.gray_active = self.gray_active.saturating_sub(1);
                        }
                        *slot = 0;
                    } else {
                        if *slot == 0 && drop_per_mille > 0 {
                            self.gray_active += 1;
                        }
                        *slot = drop_per_mille;
                    }
                }
                FaultKind::CorruptLink { link, per_mille } => {
                    gray = true;
                    let slot = &mut self.corrupt_pm[link.index()];
                    if is_repair {
                        if *slot != 0 {
                            self.gray_active = self.gray_active.saturating_sub(1);
                        }
                        *slot = 0;
                    } else {
                        if *slot == 0 && per_mille > 0 {
                            self.gray_active += 1;
                        }
                        *slot = per_mille;
                    }
                }
                FaultKind::Brownout { .. } => {
                    debug_assert!(false, "brownouts expand to link outages at build time");
                }
            }
            if !is_repair {
                self.rec.faults_applied += 1;
                self.first_fault.get_or_insert(cycle);
                // Gray faults never change the topology, so they never
                // trigger healing — recovery rides on CRC/NACK/retry.
                permanent_applied |= permanent && !gray;
                outage_applied = true;
            }
        }
        if outage_applied {
            if let Some(t) = self.tel.as_mut() {
                t.fault_applied(cycle);
            }
            if let Some(m) = self.met.as_mut() {
                m.fault_applied();
            }
        }
        if !topo_changed {
            return;
        }
        self.recompute_dead_channels();
        self.teardown_worms(cycle, false);
        if permanent_applied {
            self.attempt_repair(cycle);
        }
    }

    /// Rolls the gray-failure dice for every occupied channel on a
    /// flaky or corrupting link: a flaky hit tears the worm down (the
    /// sender's ACK timeout recovers it), a corrupt hit marks the worm
    /// so the destination CRC check NACKs it on arrival. Skipped in
    /// O(1) when no gray fault is active, and drawn from a dedicated
    /// RNG stream, so runs without gray faults are bit-identical to
    /// builds without this feature.
    fn apply_gray_failures(&mut self, cycle: u64) {
        if self.gray_active == 0 {
            return;
        }
        let mut victims: Vec<u32> = Vec::new();
        for idx in 0..self.chans.len() {
            let st = &self.chans[idx];
            if st.owner == NO_PKT || st.occ == 0 {
                continue;
            }
            let phys = self.phys(idx as u32);
            let link = phys.link().index();
            let dpm = self.flaky_pm[link] as u32;
            let cpm = self.corrupt_pm[link] as u32;
            if dpm == 0 && cpm == 0 {
                continue;
            }
            let owner = st.owner;
            if dpm > 0 && self.gray_rng.gen_range(0u32..1000) < dpm {
                if !victims.contains(&owner) {
                    victims.push(owner);
                }
                continue;
            }
            if cpm > 0
                && !self.packets[owner as usize].corrupted
                && self.gray_rng.gen_range(0u32..1000) < cpm
            {
                self.packets[owner as usize].corrupted = true;
                self.rec.corrupted_worms += 1;
                if let Some(t) = self.tel.as_mut() {
                    t.corrupted(cycle, owner, phys);
                }
            }
        }
        for pid in victims {
            self.rec.flaky_drops += 1;
            self.teardown_one(pid, cycle, false);
        }
    }

    /// Derives the per-channel dead mask from link/router fault counts.
    fn recompute_dead_channels(&mut self) {
        for idx in 0..self.chan_dead.len() {
            let ch = ChannelId(idx as u32);
            let link_down = self.link_fault_ct[ch.link().index()] > 0;
            let src_down = self.router_fault_ct[self.net.channel_src(ch).index()] > 0;
            let dst_down = self.router_fault_ct[self.net.channel_dst(ch).index()] > 0;
            self.chan_dead[idx] = link_down || src_down || dst_down;
        }
    }

    /// Tears down worms: channels released, flits discarded, packet
    /// handed to the retry machinery. With `all == false` only worms
    /// whose occupied or remaining channels are dead are torn down;
    /// with `all == true` every in-flight worm goes (the reconfiguration
    /// drain).
    fn teardown_worms(&mut self, cycle: u64, all: bool) {
        // Worm heads (max route position per owner, with the channel
        // holding it) and owners touching a dead channel.
        let mut heads: BTreeMap<u32, (u32, ChannelId)> = BTreeMap::new();
        let mut hit: BTreeSet<u32> = BTreeSet::new();
        for (idx, st) in self.chans.iter().enumerate() {
            if st.owner == NO_PKT {
                continue;
            }
            let ch = self.phys(idx as u32);
            let h = heads.entry(st.owner).or_insert((st.route_pos, ch));
            if st.route_pos > h.0 {
                *h = (st.route_pos, ch);
            }
            if self.chan_dead[ch.index()] {
                hit.insert(st.owner);
            }
        }
        let mut victims: Vec<u32> = Vec::new();
        for (&pid, &(pos, head_ch)) in &heads {
            let future_dead = self.remainder_dead(&self.packets[pid as usize], head_ch, pos);
            if all || hit.contains(&pid) || future_dead {
                victims.push(pid);
            }
        }
        for pid in victims {
            self.teardown_one(pid, cycle, all);
        }
    }

    /// Tears one worm down: channels released, flits discarded (their
    /// credits refunded — teardown must not leak FIFO slots), then the
    /// loss handed to [`retire_or_retry`](Engine::retire_or_retry).
    fn teardown_one(&mut self, pid: u32, cycle: u64, drained: bool) {
        for vid in 0..self.chans.len() as u32 {
            let (owner, occ) = {
                let st = &self.chans[vid as usize];
                (st.owner, st.occ)
            };
            if owner != pid {
                continue;
            }
            for _ in 0..occ {
                self.return_credit(vid, cycle);
            }
            self.chans[vid as usize] = ChanState::free();
        }
        let (src, still_injecting) = {
            let p = &mut self.packets[pid as usize];
            let inj = p.sent < p.len;
            p.sent = 0;
            p.injected = u64::MAX;
            p.corrupted = false;
            (p.src as usize, inj)
        };
        if still_injecting {
            self.queues[src].retain(|&q| q != pid);
        }
        self.in_flight -= 1;
        self.rec.dropped_worms += 1;
        if let Some(t) = self.tel.as_mut() {
            t.worm_truncated(cycle, pid, drained);
        }
        self.retire_or_retry(pid, cycle, false);
    }

    /// Lets the repairer install a new routing epoch; queued (not yet
    /// injected) packets re-home to it.
    fn attempt_repair(&mut self, cycle: u64) {
        let dead_links: Vec<LinkId> = (0..self.link_fault_ct.len())
            .filter(|&l| self.link_fault_ct[l] > 0)
            .map(|l| LinkId(l as u32))
            .collect();
        let dead_routers: Vec<NodeId> = (0..self.router_fault_ct.len())
            .filter(|&r| self.router_fault_ct[r] > 0)
            .map(|r| NodeId(r as u32))
            .collect();
        let installed = if let Some(mut repairer) = self.repairer.take() {
            let source = repairer(&dead_links, &dead_routers).map(|rs| {
                if cfg!(debug_assertions) {
                    self.debug_lint_install_dense(&rs, &dead_links, &dead_routers);
                }
                RouteSource::DenseOwned(Box::new(rs))
            });
            self.repairer = Some(repairer);
            source
        } else if let Some(mut repairer) = self.table_repairer.take() {
            let source = repairer(&dead_links, &dead_routers).map(|rt| {
                if cfg!(debug_assertions) {
                    self.debug_lint_install_tables(&rt, &dead_links, &dead_routers);
                }
                RouteSource::Tables(rt)
            });
            self.table_repairer = Some(repairer);
            source
        } else {
            return;
        };
        let Some(source) = installed else {
            return;
        };
        self.epochs.push(source);
        self.rec.repairs_installed += 1;
        if let Some(t) = self.tel.as_mut() {
            t.repair_installed(cycle);
        }
        if let Some(m) = self.met.as_mut() {
            m.heal_installed(cycle, self.epochs.len() - 1);
        }
        // Drain the old routing epoch: worms routed under the replaced
        // epoch hold channels in an order the new CDG knows nothing
        // about, and mixing the two epochs can deadlock even though
        // each is acyclic on its own. Tear every in-flight worm down
        // and let the retry machinery replay it under the new epoch.
        self.teardown_worms(cycle, true);
        let cur = self.cur_epoch();
        for q in &self.queues {
            for &pid in q {
                let p = &mut self.packets[pid as usize];
                if p.sent == 0 {
                    p.epoch = cur;
                }
            }
        }
    }

    /// The [`with_lint_on_install`](Engine::with_lint_on_install)
    /// check: statically lint a candidate table against the current
    /// dead set and panic if it is not clean. Only called in debug
    /// builds.
    fn debug_lint_install_dense(
        &self,
        tables: &RouteSet,
        dead_links: &[LinkId],
        dead_routers: &[NodeId],
    ) {
        let Some(ends) = &self.lint_ends else {
            return;
        };
        let mask = fractanet_route::DeadMask::from_dead(self.net, dead_links, dead_routers);
        let report = fractanet_lint::Linter::new(self.net, ends)
            .with_subject("repair install")
            .with_mask(&mask)
            .without_suggestions()
            .check(tables);
        assert!(
            report.is_clean(),
            "repairer returned tables that fail static lint:\n{report}"
        );
    }

    /// [`debug_lint_install_dense`](Engine::debug_lint_install_dense)
    /// for table repairers — lints the destination tables in place.
    fn debug_lint_install_tables(
        &self,
        tables: &Routes,
        dead_links: &[LinkId],
        dead_routers: &[NodeId],
    ) {
        let Some(ends) = &self.lint_ends else {
            return;
        };
        let mask = fractanet_route::DeadMask::from_dead(self.net, dead_links, dead_routers);
        let report = fractanet_lint::Linter::new(self.net, ends)
            .with_subject("repair install")
            .with_mask(&mask)
            .without_suggestions()
            .check_tables(tables);
        assert!(
            report.is_clean(),
            "repairer returned tables that fail static lint:\n{report}"
        );
    }

    /// Moves retries whose backoff expired back into source queues,
    /// re-homing them to the current routing epoch. Retries whose
    /// logical packet was delivered while backing off (a speculative
    /// copy arrived) are dropped as settled.
    fn release_due_retries(&mut self, cycle: u64) {
        let cur = self.cur_epoch();
        while let Some(&Reverse((when, pid))) = self.pending_retries.peek() {
            if when > cycle {
                break;
            }
            self.pending_retries.pop();
            let src = {
                let p = &mut self.packets[pid as usize];
                if p.delivered_once {
                    continue;
                }
                p.epoch = cur;
                p.sent = 0;
                p.injected = u64::MAX;
                p.corrupted = false;
                p.done = false;
                p.src as usize
            };
            self.queues[src].push_back(pid);
        }
    }

    /// Speculative retransmission (`SimConfig::ack_retransmit`): when
    /// an original's ACK timer expires while its worm may still be in
    /// flight, enqueue a *copy* carrying the same logical id — the
    /// classic timeout race that per-pair sequence numbers exist to
    /// make safe. Timers whose packet was since delivered, torn down,
    /// abandoned, or re-sent are stale and ignored.
    fn fire_ack_timeouts(&mut self, cycle: u64) {
        while let Some(&Reverse((when, pid, armed))) = self.ack_timers.peek() {
            if when > cycle {
                break;
            }
            self.ack_timers.pop();
            let (valid, src, dst, len, created) = {
                let p = &self.packets[pid as usize];
                let valid = p.attempts == armed
                    && p.sent == p.len
                    && !p.done
                    && !p.delivered_once
                    && !p.abandoned_once
                    && p.attempts < self.cfg.retry.max_retries;
                (valid, p.src, p.dst, p.len, p.created)
            };
            if !valid {
                continue;
            }
            let attempts = {
                let p = &mut self.packets[pid as usize];
                p.attempts += 1;
                p.attempts
            };
            self.rec.retries += 1;
            let copy = self.packets.len() as u32;
            let epoch = self.cur_epoch();
            self.packets.push(Packet {
                src,
                dst,
                len,
                created,
                injected: u64::MAX,
                sent: 0,
                epoch,
                attempts: 0,
                logical: pid,
                corrupted: false,
                done: false,
                delivered_once: false,
                abandoned_once: false,
            });
            self.queues[src as usize].push_back(copy);
            if let Some(t) = self.tel.as_mut() {
                t.retried(cycle, pid, attempts, cycle);
            }
            if let Some(m) = self.met.as_mut() {
                m.retried(cycle, src as usize, dst as usize);
            }
            // Re-arm with exponential spacing for the next round.
            self.ack_timers.push(Reverse((
                cycle + self.cfg.retry.backoff(attempts),
                pid,
                attempts,
            )));
        }
    }

    /// Pops queue heads whose snapshotted path is unusable (empty, or
    /// through a dead component) and hands them to the retry machinery
    /// — they would otherwise block their source queue forever.
    fn flush_unroutable_heads(&mut self, cycle: u64) {
        if self.first_fault.is_none() {
            return;
        }
        for s in 0..self.queues.len() {
            while let Some(&pid) = self.queues[s].front() {
                let p = &self.packets[pid as usize];
                if p.sent > 0 {
                    // Mid-injection: teardown owns this case.
                    break;
                }
                if !self.route_dead_or_missing(p) {
                    break;
                }
                self.queues[s].pop_front();
                self.retire_or_retry(pid, cycle, false);
            }
        }
    }

    /// Handles a lost or NACKed transmission. A lost *copy* never
    /// re-enters the retry machinery (the original's own lifecycle owns
    /// recovery), and a logical packet already delivered via a
    /// speculative copy is settled; everything else books one failed
    /// attempt.
    fn retire_or_retry(&mut self, pid: u32, cycle: u64, nacked: bool) {
        let p = &self.packets[pid as usize];
        if p.logical != pid || p.delivered_once {
            return;
        }
        self.schedule_retry_with(pid, cycle, nacked);
    }

    /// Books one failed attempt: re-queues the packet after backoff
    /// plus jitter, or abandons it past `max_retries`. A NACKed loss
    /// skips the `ack_timeout` component of the backoff — the
    /// destination reported the corruption immediately.
    fn schedule_retry_with(&mut self, pid: u32, cycle: u64, nacked: bool) {
        let (attempts, src, dst) = {
            let p = &mut self.packets[pid as usize];
            p.attempts += 1;
            (p.attempts, p.src as usize, p.dst as usize)
        };
        if attempts > self.cfg.retry.max_retries {
            self.packets[pid as usize].abandoned_once = true;
            self.rec.abandoned.push((src, dst));
            if let Some(t) = self.tel.as_mut() {
                t.abandoned(cycle, pid, src as u32, dst as u32);
            }
            if let Some(m) = self.met.as_mut() {
                m.abandoned(cycle, src, dst);
            }
            return;
        }
        self.rec.retries += 1;
        if let Some(m) = self.met.as_mut() {
            m.retried(cycle, src, dst);
        }
        let jitter = self.retry_rng.gen_range(0..=self.cfg.retry.backoff_base);
        let base = if nacked {
            self.cfg.retry.nack_backoff(attempts)
        } else {
            self.cfg.retry.backoff(attempts)
        };
        let release = cycle + base + jitter;
        self.pending_retries.push(Reverse((release, pid)));
        if let Some(t) = self.tel.as_mut() {
            t.retried(cycle, pid, attempts, release);
        }
    }

    /// Executes one cycle of flit movement; returns how many flits
    /// moved.
    fn step(&mut self, cycle: u64) -> usize {
        let nv = self.chans.len();
        let tel_on = self.tel.is_some();
        // Telemetry scratch: every transfer that wants to push a flit
        // into a channel this cycle, as (physical channel, src, dst) —
        // the raw material for the per-cycle empirical contention
        // matching.
        let mut contenders: Vec<(u32, u32, u32)> = Vec::new();
        // Decisions on start-of-cycle state, all in vid terms.
        let mut ejects: Vec<u32> = Vec::new();
        let mut body_moves: Vec<(u32, u32)> = Vec::new(); // (from vid, next vid)
        let mut alloc_reqs: Vec<(u32, u32)> = Vec::new(); // (target vid, from vid)
        let mut credit_stalls = 0u64;
        for vid in 0..nv as u32 {
            let st = &self.chans[vid as usize];
            if st.occ == 0 {
                continue;
            }
            let p = &self.packets[st.owner as usize];
            let next = match self.next_hop(p, self.phys(vid), st.route_pos) {
                NextHop::Eject => {
                    ejects.push(vid);
                    continue;
                }
                NextHop::Channel(next) => next,
            };
            let nvid = self.scan_view().vid_of(p, st.route_pos + 1, vid, next);
            let nst = &self.chans[nvid as usize];
            if st.front() == 0 {
                if tel_on {
                    contenders.push((next.0, p.src, p.dst));
                }
                if nst.owner == NO_PKT && self.credits[nvid as usize] > 0 {
                    alloc_reqs.push((nvid, vid));
                } else {
                    let owner = st.owner;
                    if nst.owner == NO_PKT {
                        // The VC is free; credits are the binding
                        // constraint.
                        credit_stalls += 1;
                        if let Some(t) = self.tel.as_mut() {
                            t.credit_stalled(next);
                        }
                    }
                    if let Some(t) = self.tel.as_mut() {
                        t.blocked(cycle, owner, next);
                    }
                }
            } else {
                debug_assert_eq!(nst.owner, st.owner, "body flit lost its worm");
                if tel_on {
                    contenders.push((next.0, p.src, p.dst));
                }
                if self.credits[nvid as usize] > 0 {
                    body_moves.push((vid, nvid));
                } else {
                    let owner = st.owner;
                    credit_stalls += 1;
                    if let Some(t) = self.tel.as_mut() {
                        t.credit_stalled(next);
                        t.blocked(cycle, owner, next);
                    }
                }
            }
        }
        // Injection decisions. A head that has not started injecting
        // must re-prove path liveness here: an empty path (severed
        // pair under a partial-coverage repair) or one crossing a dead
        // channel goes to the retry machinery instead of the fabric,
        // regardless of whether flush_unroutable_heads saw it.
        let mut injections: Vec<usize> = Vec::new(); // source indices
        for s in 0..self.queues.len() {
            while let Some(&pid) = self.queues[s].front() {
                let (stale, unroutable) = {
                    let p = &self.packets[pid as usize];
                    // A queued transmission whose logical packet was
                    // already delivered (a speculative-copy race) is
                    // settled: drop it instead of wasting fabric on a
                    // guaranteed duplicate.
                    let stale = self.cfg.dedup
                        && p.sent == 0
                        && self.packets[p.logical as usize].delivered_once;
                    let unroutable = !stale && p.sent == 0 && self.route_dead_or_missing(p);
                    (stale, unroutable)
                };
                if stale {
                    self.queues[s].pop_front();
                    continue;
                }
                if unroutable {
                    self.queues[s].pop_front();
                    self.retire_or_retry(pid, cycle, false);
                    continue;
                }
                let p = &self.packets[pid as usize];
                let (c0, v0) = self.scan_view().first_vid(p);
                let st = &self.chans[v0 as usize];
                if tel_on {
                    contenders.push((c0.0, p.src, p.dst));
                }
                let free = self.credits[v0 as usize] > 0;
                let (ok, stall) = if p.sent == 0 {
                    (st.owner == NO_PKT && free, st.owner == NO_PKT && !free)
                } else {
                    (free, !free)
                };
                if ok {
                    injections.push(s);
                } else {
                    if stall {
                        credit_stalls += 1;
                        if let Some(t) = self.tel.as_mut() {
                            t.credit_stalled(c0);
                        }
                    }
                    if let Some(t) = self.tel.as_mut() {
                        t.blocked(cycle, pid, c0);
                    }
                }
                break;
            }
        }

        self.commit_step(
            cycle,
            alloc_reqs,
            contenders,
            ejects,
            body_moves,
            injections,
            credit_stalls,
        )
    }

    /// The serial back half of a cycle, shared verbatim by the oracle
    /// [`step`](Engine::step) and the sharded parallel step: round-robin
    /// arbitration over the collected allocation requests, the
    /// arbitration-loser and contention telemetry, and the apply phases
    /// (ejections, body transfers, grants, injections). Everything that
    /// mutates packets, channels, RNG streams, or the recorder runs
    /// here, on one thread, in canonical order.
    #[allow(clippy::too_many_arguments)]
    fn commit_step(
        &mut self,
        cycle: u64,
        mut alloc_reqs: Vec<(u32, u32)>,
        mut contenders: Vec<(u32, u32, u32)>,
        ejects: Vec<u32>,
        mut body_moves: Vec<(u32, u32)>,
        injections: Vec<usize>,
        credit_stalls: u64,
    ) -> usize {
        let vcs = self.vcs as u32;
        self.credit_stalls += credit_stalls;
        if credit_stalls > 0 {
            if let Some(m) = self.met.as_mut() {
                m.credit_stalled(credit_stalls);
            }
        }
        // Physical-wire arbitration (vcs > 1 only): VCs multiplex one
        // physical link, which carries at most one flit per cycle. Body
        // transfers claim wires first, in vid order; head allocations
        // compete for what is left. Injection channels are exempt —
        // each end node writes only its own attach channel and injects
        // at most one flit per cycle, so they are single-writer at any
        // VC count. At vcs == 1 channel ownership already serializes
        // every writer, so no stamp is ever consulted and the schedule
        // is bit-identical to the pre-credit engine.
        if vcs > 1 {
            let stamp = cycle + 1;
            body_moves.retain(|&(_, nvid)| {
                let w = (nvid / vcs) as usize;
                if self.wire_stamp[w] == stamp {
                    false // a sibling VC won the wire; stay buffered
                } else {
                    self.wire_stamp[w] = stamp;
                    true
                }
            });
        }
        // Round-robin arbitration per allocation target VC.
        alloc_reqs.sort_unstable();
        let mut grants: Vec<(u32, u32)> = Vec::new(); // (target, from)
        let mut i = 0;
        while i < alloc_reqs.len() {
            let target = alloc_reqs[i].0;
            let mut j = i;
            while j < alloc_reqs.len() && alloc_reqs[j].0 == target {
                j += 1;
            }
            let group = &alloc_reqs[i..j];
            if vcs > 1 && self.wire_stamp[(target / vcs) as usize] == cycle + 1 {
                // The physical wire under this VC is taken this cycle.
                // The whole group stalls and the round-robin pointer
                // holds, so the would-be winner keeps its priority.
                i = j;
                continue;
            }
            let last = self.rr[target as usize];
            let granted = group
                .iter()
                .map(|&(_, from)| from)
                .find(|&from| from > last)
                .unwrap_or(group[0].1);
            self.rr[target as usize] = granted;
            if vcs > 1 {
                self.wire_stamp[(target / vcs) as usize] = cycle + 1;
            }
            grants.push((target, granted));
            i = j;
        }

        // Telemetry: arbitration losers were blocked this cycle, and
        // the collected contenders give each channel's empirical
        // per-cycle contention (max matching of distinct-src /
        // distinct-dst transfer pairs, mirroring the analytical L5
        // metric).
        if let Some(t) = self.tel.as_mut() {
            for &(target, from) in &alloc_reqs {
                let won = grants.iter().any(|&(gt, gf)| gt == target && gf == from);
                if !won {
                    t.blocked(
                        cycle,
                        self.chans[from as usize].owner,
                        ChannelId(target / vcs),
                    );
                }
            }
            contenders.sort_unstable();
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            let mut i = 0;
            while i < contenders.len() {
                let ch = contenders[i].0;
                pairs.clear();
                while i < contenders.len() && contenders[i].0 == ch {
                    pairs.push((contenders[i].1, contenders[i].2));
                    i += 1;
                }
                t.observe_contention(ChannelId(ch), &pairs);
            }
        }

        let mut moves = 0usize;
        // Apply ejections. At vcs > 1 two VCs of the same attach
        // channel can both present a deliverable flit; the destination
        // node ingests one flit per attach port per cycle, so the
        // eject stamp dedupes in vid order and the loser stays
        // buffered for next cycle. (The ingest port is a distinct
        // resource from the physical wire: the flit being ejected is
        // already buffered at the destination-side FIFO.)
        for vid in ejects {
            if vcs > 1 {
                let w = (vid / vcs) as usize;
                if self.eject_stamp[w] == cycle + 1 {
                    continue;
                }
                self.eject_stamp[w] = cycle + 1;
            }
            moves += 1;
            let (owner, flit) = {
                let st = &mut self.chans[vid as usize];
                let flit = st.front();
                st.occ -= 1;
                (st.owner, flit)
            };
            self.return_credit(vid, cycle);
            if let Some(t) = self.tel.as_mut() {
                t.flit_forwarded(ChannelId(vid / vcs));
            }
            let done = {
                let p = &self.packets[owner as usize];
                flit == p.len - 1
            };
            if cycle >= self.cfg.warmup_cycles {
                self.delivered_flits_measured += 1;
            }
            if done {
                self.chans[vid as usize].owner = NO_PKT;
                self.in_flight -= 1;
                let (logical, corrupted, src, dst, created, injected) = {
                    let p = &mut self.packets[owner as usize];
                    p.done = true;
                    (p.logical, p.corrupted, p.src, p.dst, p.created, p.injected)
                };
                let settled = {
                    let lp = &self.packets[logical as usize];
                    lp.delivered_once || lp.abandoned_once
                };
                if corrupted {
                    // Destination CRC check fails: answer "This Packet
                    // Bad" and hand the sender straight to the retry
                    // machinery — no need to wait out the ACK timeout.
                    self.rec.nacks += 1;
                    if let Some(t) = self.tel.as_mut() {
                        t.nacked(cycle, owner, src, dst);
                    }
                    if let Some(m) = self.met.as_mut() {
                        m.nacked();
                    }
                    self.retire_or_retry(owner, cycle, true);
                } else if self.cfg.dedup && settled {
                    // Per-pair sequence number repeats: the logical
                    // packet already completed (or was given up on), so
                    // this arrival is a duplicate from the timeout race.
                    self.rec.duplicates_suppressed += 1;
                    if let Some(t) = self.tel.as_mut() {
                        t.dup_suppressed(cycle, owner, logical);
                    }
                    if let Some(m) = self.met.as_mut() {
                        m.dup_suppressed();
                    }
                } else {
                    self.packets[logical as usize].delivered_once = true;
                    self.delivered += 1;
                    if created >= self.cfg.warmup_cycles {
                        self.latencies.push(cycle + 1 - created);
                        self.net_latencies.push(cycle + 1 - injected);
                    }
                    if let Some(first) = self.first_fault {
                        if created >= first {
                            self.rec.post_fault_delivered += 1;
                        }
                        if self.packets[logical as usize].attempts > 0
                            && self.rec.time_to_recover.is_none()
                        {
                            self.rec.time_to_recover = Some(cycle + 1 - first);
                            if let Some(t) = self.tel.as_mut() {
                                t.recovered(cycle + 1);
                            }
                        }
                    }
                    if let Some(t) = self.tel.as_mut() {
                        t.delivered(cycle, logical, cycle + 1 - created);
                    }
                    if let Some(m) = self.met.as_mut() {
                        m.delivered(cycle, src as usize, dst as usize, cycle + 1 - created);
                    }
                }
            }
        }
        // Apply body transfers. The departing flit frees a slot in
        // `from`'s FIFO (credit returned upstream) and consumes one of
        // `nvid`'s credits on arrival.
        for (from, nvid) in body_moves {
            moves += 1;
            let (owner, flit) = {
                let st = &mut self.chans[from as usize];
                let flit = st.front();
                st.occ -= 1;
                (st.owner, flit)
            };
            self.return_credit(from, cycle);
            let p = &self.packets[owner as usize];
            if flit == p.len - 1 {
                self.chans[from as usize].owner = NO_PKT;
            }
            self.consume_credit(nvid);
            let nst = &mut self.chans[nvid as usize];
            nst.entered += 1;
            nst.occ += 1;
            let depth = nst.occ;
            self.busy[(nvid / vcs) as usize] += 1;
            if let Some(t) = self.tel.as_mut() {
                t.flit_forwarded(ChannelId(from / vcs));
                t.observe_depth(ChannelId(nvid / vcs), depth);
            }
        }
        // Apply granted head allocations.
        for (target, from) in grants {
            moves += 1;
            let (owner, flit, pos) = {
                let st = &mut self.chans[from as usize];
                let flit = st.front();
                st.occ -= 1;
                (st.owner, flit, st.route_pos)
            };
            debug_assert_eq!(flit, 0, "allocation moves the head flit");
            self.return_credit(from, cycle);
            let p = &self.packets[owner as usize];
            if flit == p.len - 1 {
                // Single-flit packet: head is also tail.
                self.chans[from as usize].owner = NO_PKT;
            }
            self.consume_credit(target);
            let nst = &mut self.chans[target as usize];
            nst.owner = owner;
            nst.entered = 1;
            nst.occ = 1;
            nst.route_pos = pos + 1;
            self.busy[(target / vcs) as usize] += 1;
            if let Some(t) = self.tel.as_mut() {
                t.flit_forwarded(ChannelId(from / vcs));
                t.head_advanced(cycle, owner, ChannelId(target / vcs));
                if vcs > 1 {
                    t.vc_allocated(cycle, owner, ChannelId(target / vcs), (target % vcs) as u8);
                }
                t.observe_depth(ChannelId(target / vcs), 1);
            }
        }
        // Apply injections.
        for s in injections {
            moves += 1;
            let pid = *self.queues[s].front().expect("checked above");
            let (c0, v0) = {
                let p = &self.packets[pid as usize];
                self.scan_view().first_vid(p)
            };
            let (sent_after, len, src, dst, attempts, original) = {
                let p = &mut self.packets[pid as usize];
                p.sent += 1;
                if p.sent == 1 {
                    p.injected = cycle;
                    self.in_flight += 1;
                }
                (p.sent, p.len, p.src, p.dst, p.attempts, p.logical == pid)
            };
            self.consume_credit(v0);
            let st = &mut self.chans[v0 as usize];
            if sent_after == 1 {
                st.owner = pid;
                st.entered = 0;
                st.route_pos = 0;
            }
            st.entered += 1;
            st.occ += 1;
            let depth = st.occ;
            self.busy[c0.index()] += 1;
            if let Some(t) = self.tel.as_mut() {
                if sent_after == 1 {
                    t.packet_injected(cycle, pid, src, dst, len);
                }
                t.observe_depth(c0, depth);
            }
            if sent_after == len {
                self.queues[s].pop_front();
                // The full worm is in the fabric: a speculative sender
                // arms its ACK timer now (only the original transmission
                // does — copies are already the recovery path).
                if self.cfg.ack_retransmit && original {
                    self.ack_timers.push(Reverse((
                        cycle + self.cfg.retry.ack_timeout,
                        pid,
                        attempts,
                    )));
                }
            }
        }
        moves
    }

    fn diagnose_deadlock(&self, cycle: u64) -> DeadlockEvent {
        // The wait graph is built over VCs (vids): at vcs > 1 two worms
        // can hold different VCs of the same physical channel, and only
        // the per-VC graph distinguishes a dateline-broken cycle from a
        // real one. The reported cycle channels are mapped back to
        // physical ids (an identity at vcs == 1) without deduplication.
        let mut wg = WaitGraph::new(self.chans.len());
        for (idx, st) in self.chans.iter().enumerate() {
            if st.occ == 0 || st.owner == NO_PKT {
                continue;
            }
            let vid = idx as u32;
            let p = &self.packets[st.owner as usize];
            if let NextHop::Channel(next) = self.next_hop(p, self.phys(vid), st.route_pos) {
                let nvid = self.scan_view().vid_of(p, st.route_pos + 1, vid, next);
                wg.add_wait(ChannelId(vid), ChannelId(nvid));
            }
        }
        let vcs = self.vcs as u32;
        DeadlockEvent {
            cycle,
            cycle_channels: wg
                .find_deadlock()
                .unwrap_or_default()
                .into_iter()
                .map(|c| ChannelId(c.0 / vcs))
                .collect(),
            stuck_packets: self.in_flight,
        }
    }

    fn finish(
        mut self,
        cycles: u64,
        generated: usize,
        deadlock: Option<DeadlockEvent>,
    ) -> SimResult {
        let n = self.n_addr.max(1);
        let telemetry = self.tel.take().map(|r| r.finish(cycles, &self.busy));
        let metrics = self.met.take().map(|m| m.finish(cycles, &self.busy));
        let mut lats = self.latencies.clone();
        lats.sort_unstable();
        let avg = |v: &[u64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<u64>() as f64 / v.len() as f64
            }
        };
        let measured_cycles = cycles.saturating_sub(self.cfg.warmup_cycles).max(1);
        SimResult {
            cycles,
            generated,
            delivered: self.delivered,
            avg_latency: avg(&lats),
            avg_network_latency: avg(&self.net_latencies),
            p95_latency: lats
                .get((lats.len().saturating_mul(95) / 100).min(lats.len().saturating_sub(1)))
                .copied()
                .unwrap_or(0),
            max_latency: lats.last().copied().unwrap_or(0),
            throughput: self.delivered_flits_measured as f64 / measured_cycles as f64 / n as f64,
            channel_busy: self.busy,
            deadlock,
            recovery: self.rec,
            credits: CreditStats {
                consumed: self.credits_consumed,
                returned: self.credits_returned,
                stalls: self.credit_stalls,
            },
            telemetry,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultEvent, RetryPolicy};
    use crate::traffic::DstPattern;
    use fractanet_route::dor::mesh_xy_routes;
    use fractanet_route::fractal::fractal_routes;
    use fractanet_route::ringroute::ring_clockwise_routes;
    use fractanet_route::RouteSet;
    use fractanet_topo::{Fractahedron, Mesh2D, Ring, Topology};

    fn ring4() -> (Ring, RouteSet) {
        let r = Ring::new(4, 1, 6).unwrap();
        let rs = RouteSet::from_table(r.net(), r.end_nodes(), &ring_clockwise_routes(&r)).unwrap();
        (r, rs)
    }

    #[test]
    fn single_packet_delivers_with_sane_latency() {
        let (r, rs) = ring4();
        let cfg = SimConfig::default()
            .with_packet_flits(8)
            .with_max_cycles(500);
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![(0, 0, 1)]));
        assert!(res.is_clean());
        assert_eq!(res.delivered, 1);
        // 8 flits over 3 channels: latency ≈ hops + flits, well under 50.
        assert!(
            res.avg_latency >= 10.0 && res.avg_latency < 50.0,
            "{}",
            res.avg_latency
        );
        assert!(res.avg_network_latency <= res.avg_latency);
    }

    #[test]
    fn fig1_deadlocks_on_clockwise_ring() {
        // Figure 1: four simultaneous wrap-around transfers, packets
        // long enough that tails still hold the first link when heads
        // block.
        let (r, rs) = ring4();
        let cfg = SimConfig {
            packet_flits: 32,
            buffer_depth: 2,
            max_cycles: 10_000,
            stall_threshold: 200,
            ..SimConfig::default()
        };
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::fig1_ring(4));
        let dl = res.deadlock.expect("Fig 1 must deadlock");
        assert!(!dl.cycle_channels.is_empty(), "circular wait must be found");
        assert_eq!(dl.stuck_packets, 4);
        assert_eq!(res.delivered, 0);
    }

    #[test]
    fn fig1_pattern_completes_on_mesh_dor() {
        // The same four routers as a 2x2 mesh under dimension-order
        // routing: "routes A and C would be allowed, but routes B and
        // D would be disallowed, thus preventing the deadlock".
        let m = Mesh2D::new(2, 2, 1, 6).unwrap();
        let rs = RouteSet::from_table(m.net(), m.end_nodes(), &mesh_xy_routes(&m)).unwrap();
        let cfg = SimConfig {
            packet_flits: 32,
            buffer_depth: 2,
            max_cycles: 10_000,
            stall_threshold: 200,
            ..SimConfig::default()
        };
        // Same logical pattern: every node sends to the diagonal node.
        let wl = Workload::Scripted(vec![(0, 0, 3), (0, 1, 2), (0, 2, 1), (0, 3, 0)]);
        let res = Engine::new(m.net(), &rs, cfg).run(wl);
        assert!(res.is_clean(), "DOR must not deadlock: {:?}", res.deadlock);
        assert_eq!(res.delivered, 4);
    }

    #[test]
    fn all_to_all_on_fractahedron_completes() {
        let f = Fractahedron::new(1, fractanet_topo::Variant::Fat, false).unwrap();
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &fractal_routes(&f)).unwrap();
        let cfg = SimConfig::default()
            .with_packet_flits(8)
            .with_max_cycles(20_000);
        let res = Engine::new(f.net(), &rs, cfg).run(Workload::all_to_all_burst(8));
        assert!(res.is_clean());
        assert_eq!(res.delivered, 56);
        assert!(res.throughput > 0.0);
    }

    #[test]
    fn uniform_load_on_fat_64_is_deadlock_free() {
        let f = Fractahedron::paper_fat_64();
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &fractal_routes(&f)).unwrap();
        let cfg = SimConfig {
            packet_flits: 8,
            max_cycles: 8_000,
            stall_threshold: 2_000,
            ..SimConfig::default()
        };
        let wl = Workload::Bernoulli {
            injection_rate: 0.1,
            pattern: DstPattern::Uniform,
            until_cycle: 4_000,
        };
        let res = Engine::new(f.net(), &rs, cfg).run(wl);
        assert!(res.deadlock.is_none());
        assert!(res.delivered > 0);
        assert!(
            res.delivery_ratio() > 0.95,
            "{} of {}",
            res.delivered,
            res.generated
        );
    }

    #[test]
    fn latency_grows_with_load() {
        let f = Fractahedron::paper_fat_64();
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &fractal_routes(&f)).unwrap();
        let mut avg = Vec::new();
        for rate in [0.05, 0.55] {
            let cfg = SimConfig {
                packet_flits: 8,
                max_cycles: 6_000,
                stall_threshold: 3_000,
                warmup_cycles: 500,
                ..SimConfig::default()
            };
            let wl = Workload::Bernoulli {
                injection_rate: rate,
                pattern: DstPattern::Uniform,
                until_cycle: 4_000,
            };
            let res = Engine::new(f.net(), &rs, cfg).run(wl);
            assert!(res.deadlock.is_none());
            avg.push(res.avg_latency);
        }
        assert!(avg[1] > avg[0], "latency must rise with load: {avg:?}");
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let (r, rs) = ring4();
        let mk = || {
            let cfg = SimConfig::default()
                .with_packet_flits(4)
                .with_max_cycles(3_000);
            let wl = Workload::Bernoulli {
                injection_rate: 0.2,
                pattern: DstPattern::Uniform,
                until_cycle: 1_000,
            };
            Engine::new(r.net(), &rs, cfg).run(wl)
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.avg_latency, b.avg_latency);
        assert_eq!(a.channel_busy, b.channel_busy);
    }

    #[test]
    fn busy_counts_match_flit_volume() {
        let (r, rs) = ring4();
        let cfg = SimConfig::default()
            .with_packet_flits(4)
            .with_max_cycles(1_000);
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![(0, 0, 1)]));
        // One 4-flit packet over a 3-channel path: 12 channel entries.
        let total: u64 = res.channel_busy.iter().sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn single_flit_packets_work() {
        // A 1-flit packet's head is also its tail: allocation and
        // release collapse into one hop each.
        let (r, rs) = ring4();
        let cfg = SimConfig::default()
            .with_packet_flits(1)
            .with_max_cycles(2_000);
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::all_to_all_burst(4));
        assert!(res.is_clean(), "{:?}", res.deadlock);
        assert_eq!(res.delivered, 12);
        // One flit per channel crossing.
        let total: u64 = res.channel_busy.iter().sum();
        let expect: u64 = (0..4)
            .flat_map(|s| (0..4).filter(move |&d| d != s).map(move |d| (s, d)))
            .map(|(s, d)| rs.path(s, d).len() as u64)
            .sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn deep_buffers_do_not_change_delivery() {
        let (r, rs) = ring4();
        let mut delivered = Vec::new();
        for depth in [1u32, 4, 16] {
            let cfg = SimConfig {
                packet_flits: 8,
                buffer_depth: depth,
                max_cycles: 20_000,
                ..SimConfig::default()
            };
            let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![
                (0, 0, 1),
                (0, 1, 2),
                (5, 2, 3),
            ]));
            assert!(res.is_clean());
            delivered.push(res.delivered);
        }
        assert!(delivered.iter().all(|&d| d == 3));
    }

    #[test]
    fn queueing_at_source_counts_in_latency() {
        // Two packets back-to-back from the same source: the second
        // waits for the first's tail to clear the injection channel.
        let (r, rs) = ring4();
        let cfg = SimConfig::default()
            .with_packet_flits(8)
            .with_max_cycles(1_000);
        let wl = Workload::Scripted(vec![(0, 0, 2), (0, 0, 2)]);
        let res = Engine::new(r.net(), &rs, cfg).run(wl);
        assert!(res.is_clean());
        assert_eq!(res.delivered, 2);
        assert!(res.max_latency > res.avg_network_latency as u64);
    }

    // ------------------------------------------------------------------
    // Live fault injection.

    /// The router-to-router link on the clockwise path `0 → 1`.
    fn cw_link_0_to_1(rs: &RouteSet) -> fractanet_graph::LinkId {
        rs.path(0, 1)[1].link()
    }

    #[test]
    fn permanent_fault_without_retry_abandons_packet() {
        let (r, rs) = ring4();
        let cfg = SimConfig {
            packet_flits: 32,
            max_cycles: 5_000,
            retry: RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::kill_link(cw_link_0_to_1(&rs), 8));
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![(0, 0, 1)]));
        assert_eq!(res.delivered, 0);
        assert_eq!(res.recovery.dropped_worms, 1);
        assert_eq!(res.recovery.faults_applied, 1);
        assert_eq!(res.recovery.abandoned, vec![(0, 1)]);
        assert!(res.deadlock.is_none());
        assert!(res.is_recovered());
    }

    #[test]
    fn transient_fault_recovers_via_retry() {
        let (r, rs) = ring4();
        let cfg = SimConfig {
            packet_flits: 32,
            max_cycles: 20_000,
            retry: RetryPolicy {
                ack_timeout: 8,
                max_retries: 8,
                backoff_base: 8,
                jitter_seed: 1,
            },
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::kill_link(cw_link_0_to_1(&rs), 8).transient(200));
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![(0, 0, 1)]));
        assert_eq!(res.delivered, 1, "{:?}", res.recovery);
        assert!(res.recovery.retries >= 1);
        assert!(res.recovery.abandoned.is_empty());
        assert!(res.recovery.time_to_recover.is_some());
        assert!(res.is_clean());
    }

    #[test]
    fn repairer_reroutes_around_permanent_fault() {
        let (r, rs) = ring4();
        let dead = cw_link_0_to_1(&rs);
        // Counter-clockwise detour for 0 → 1: the reverse of the
        // clockwise 1 → 0 path, channel by channel.
        let detour: Vec<ChannelId> = rs.path(1, 0).iter().rev().map(|c| c.reverse()).collect();
        assert!(detour.iter().all(|c| c.link() != dead));
        let cfg = SimConfig {
            packet_flits: 32,
            max_cycles: 20_000,
            retry: RetryPolicy {
                ack_timeout: 8,
                max_retries: 4,
                backoff_base: 8,
                jitter_seed: 1,
            },
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::kill_link(dead, 8));
        let rs_for_repair = rs.clone();
        let res = Engine::new(r.net(), &rs, cfg)
            .with_repairer(move |dead_links, _| {
                assert_eq!(dead_links, [dead]);
                let detour = detour.clone();
                let base = rs_for_repair.clone();
                Some(RouteSet::from_pairs(base.len(), move |s, d| {
                    if (s, d) == (0, 1) {
                        detour.clone()
                    } else {
                        base.path(s, d).to_vec()
                    }
                }))
            })
            .run(Workload::Scripted(vec![(0, 0, 1)]));
        assert_eq!(res.delivered, 1, "{:?}", res.recovery);
        assert_eq!(res.recovery.repairs_installed, 1);
        assert_eq!(res.recovery.dropped_worms, 1);
        assert!(res.recovery.retries >= 1);
        assert!(res.recovery.time_to_recover.is_some());
        assert!(res.is_clean());
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "fail static lint"))]
    fn lint_on_install_rejects_stale_tables() {
        // Regression for the PR 1 bug class: a "repairer" that hands
        // back the pre-fault tables (still routing over the dead link)
        // must be caught by the debug lint-on-install hook, not
        // silently installed.
        let (r, rs) = ring4();
        let dead = cw_link_0_to_1(&rs);
        let cfg = SimConfig {
            packet_flits: 8,
            max_cycles: 2_000,
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::kill_link(dead, 8));
        let stale = rs.clone();
        let res = Engine::new(r.net(), &rs, cfg)
            .with_repairer(move |_, _| Some(stale.clone()))
            .with_lint_on_install(r.end_nodes())
            .run(Workload::Scripted(vec![(0, 0, 1)]));
        // Release builds skip the hook; the engine then survives on
        // its runtime liveness checks alone.
        assert!(res.deadlock.is_none());
    }

    #[test]
    fn router_fault_kills_attached_channels() {
        let (r, rs) = ring4();
        // The router on the 0 → 1 path (downstream end of the
        // injection channel).
        let router = r.net().channel_dst(rs.path(0, 1)[0]);
        let cfg = SimConfig {
            packet_flits: 16,
            max_cycles: 5_000,
            retry: RetryPolicy {
                max_retries: 1,
                ..RetryPolicy::default()
            },
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::kill_router(router, 4));
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![(0, 0, 1)]));
        // The only route 0 → 1 passes the dead router: dropped, then
        // retried against the same dead table, then abandoned.
        assert_eq!(res.delivered, 0);
        assert!(res.recovery.dropped_worms >= 1);
        assert_eq!(res.recovery.abandoned, vec![(0, 1)]);
        assert!(res.is_recovered());
    }

    #[test]
    fn packet_generated_at_fault_cycle_never_crosses_dead_link() {
        // Regression: a packet generated into an empty source queue in
        // the same cycle its fault lands used to reach the injection
        // loop before any liveness check and deliver across the dead
        // link (static tables, no repairer).
        let (r, rs) = ring4();
        let dead = cw_link_0_to_1(&rs);
        let cfg = SimConfig {
            packet_flits: 8,
            max_cycles: 5_000,
            retry: RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            },
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::kill_link(dead, 8));
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![(8, 0, 1)]));
        assert_eq!(res.delivered, 0, "{:?}", res.recovery);
        assert!(res.recovery.retries >= 1);
        assert_eq!(res.recovery.abandoned, vec![(0, 1)]);
        assert!(res.deadlock.is_none());
    }

    #[test]
    fn severed_pair_after_partial_repair_is_abandoned_not_panicked() {
        // Regression: a repair that cannot cover every pair leaves
        // severed pairs with empty paths by design; a packet generated
        // for such a pair used to panic on `path[0]` in the injection
        // loop if it reached the head of an empty queue the same
        // cycle.
        let (r, rs) = ring4();
        let dead = cw_link_0_to_1(&rs);
        let cfg = SimConfig {
            packet_flits: 8,
            max_cycles: 10_000,
            retry: RetryPolicy {
                ack_timeout: 8,
                max_retries: 2,
                backoff_base: 8,
                jitter_seed: 1,
            },
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::kill_link(dead, 8));
        let rs_for_repair = rs.clone();
        let res = Engine::new(r.net(), &rs, cfg)
            .with_repairer(move |_, _| {
                // Partial coverage: 0 → 1 stays severed (empty path).
                let base = rs_for_repair.clone();
                Some(RouteSet::from_pairs(base.len(), move |s, d| {
                    if (s, d) == (0, 1) {
                        Vec::new()
                    } else {
                        base.path(s, d).to_vec()
                    }
                }))
            })
            .run(Workload::Scripted(vec![(0, 2, 3), (10, 0, 1)]));
        // The severed pair is retried then abandoned; the rest
        // delivers under the repaired tables.
        assert_eq!(res.delivered, 1, "{:?}", res.recovery);
        assert_eq!(res.recovery.repairs_installed, 1);
        assert_eq!(res.recovery.abandoned, vec![(0, 1)]);
        assert!(res.deadlock.is_none());
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let (r, rs) = ring4();
        let mk = || {
            let cfg = SimConfig {
                packet_flits: 8,
                max_cycles: 6_000,
                retry: RetryPolicy {
                    ack_timeout: 16,
                    max_retries: 3,
                    backoff_base: 16,
                    jitter_seed: 7,
                },
                ..SimConfig::default()
            }
            .with_fault(FaultEvent::kill_link(cw_link_0_to_1(&rs), 50).transient(400));
            let wl = Workload::Bernoulli {
                injection_rate: 0.15,
                pattern: DstPattern::Uniform,
                until_cycle: 1_000,
            };
            Engine::new(r.net(), &rs, cfg).run(wl)
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.recovery.retries, b.recovery.retries);
        assert_eq!(a.recovery.dropped_worms, b.recovery.dropped_worms);
        assert_eq!(a.recovery.abandoned, b.recovery.abandoned);
        assert_eq!(a.channel_busy, b.channel_busy);
    }

    // ------------------------------------------------------------------
    // Telemetry.

    use fractanet_telemetry::{SpanKind, Telemetry};

    #[test]
    fn saturated_channel_busy_equals_cycles() {
        // One packet longer than the whole run, injected at cycle 0:
        // the injection channel accepts exactly one flit every cycle,
        // so its busy count — and the telemetry busy_cycles mirror —
        // must equal the run length exactly, and utilization 1.0.
        let (r, rs) = ring4();
        let cfg = SimConfig::default()
            .with_packet_flits(1_000)
            .with_max_cycles(500)
            .with_telemetry(Telemetry::recording());
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![(0, 0, 1)]));
        assert_eq!(res.cycles, 500);
        let c0 = rs.path(0, 1)[0].index();
        assert_eq!(res.channel_busy[c0], res.cycles);
        let tel = res.telemetry.expect("telemetry was recording");
        assert_eq!(tel.channels[c0].busy_cycles, res.cycles);
        assert_eq!(tel.utilization()[c0], 1.0);
        // The 0 → 1 route is three hops; once the pipeline fills, all
        // three channels run within two flits of fully busy.
        assert_eq!(tel.utilization_histogram()[9], 3);
    }

    #[test]
    fn event_ring_drop_accounting_is_exact_on_overflow() {
        let (r, rs) = ring4();
        // 1-flit packets: a multi-flit all-to-all burst on the
        // clockwise-only ring would wormhole-deadlock (Fig 1).
        let cfg = SimConfig::default()
            .with_packet_flits(1)
            .with_max_cycles(5_000)
            .with_telemetry(Telemetry::recording().with_event_capacity(4));
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::all_to_all_burst(4));
        assert!(res.is_clean());
        let tel = res.telemetry.expect("telemetry was recording");
        assert_eq!(tel.events.len(), 4, "ring stores exactly its capacity");
        assert!(tel.events_dropped > 0, "12 packets must overflow 4 slots");
        assert_eq!(
            tel.events.len() as u64 + tel.events_dropped,
            tel.events_seen
        );
        // 12 injections + 12 deliveries at minimum.
        assert!(tel.events_seen >= 24, "{}", tel.events_seen);
    }

    #[test]
    fn time_to_recover_stays_none_without_retried_delivery() {
        // Faults applied, the only packet abandoned: `time_to_recover`
        // must stay `None` — never collapse to zero — and the span
        // decomposition must agree, while the fault instant and the
        // whole-run span are still traced.
        let (r, rs) = ring4();
        let cfg = SimConfig {
            packet_flits: 32,
            max_cycles: 5_000,
            retry: RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::kill_link(cw_link_0_to_1(&rs), 8))
        .with_telemetry(Telemetry::recording());
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![(0, 0, 1)]));
        assert!(res.is_recovered());
        assert_eq!(res.recovery.faults_applied, 1);
        assert_eq!(res.recovery.time_to_recover, None);
        let tel = res.telemetry.expect("telemetry was recording");
        assert_eq!(tel.recovery_span_cycles(), None);
        assert!(tel
            .spans
            .iter()
            .any(|s| s.kind == SpanKind::FaultInjection && s.begin == 8));
        assert!(tel
            .spans
            .iter()
            .any(|s| s.kind == SpanKind::Simulation && s.duration() == res.cycles));
        let kinds: Vec<&str> = tel.events.iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"truncated"), "{kinds:?}");
        assert!(kinds.contains(&"abandoned"), "{kinds:?}");
    }

    #[test]
    fn recovery_spans_sum_to_time_to_recover() {
        // Transient fault healed by retry alone: repair span is
        // zero-length, redelivery covers the whole recovery.
        let (r, rs) = ring4();
        let cfg = SimConfig {
            packet_flits: 32,
            max_cycles: 20_000,
            retry: RetryPolicy {
                ack_timeout: 8,
                max_retries: 8,
                backoff_base: 8,
                jitter_seed: 1,
            },
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::kill_link(cw_link_0_to_1(&rs), 8).transient(200))
        .with_telemetry(Telemetry::recording());
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![(0, 0, 1)]));
        assert_eq!(res.delivered, 1);
        let want = res.recovery.time_to_recover.expect("recovered");
        let tel = res.telemetry.expect("telemetry was recording");
        assert_eq!(tel.recovery_span_cycles(), Some(want));
        let kinds: Vec<&str> = tel.events.iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"retried"), "{kinds:?}");
        assert!(kinds.contains(&"delivered"), "{kinds:?}");
    }

    #[test]
    fn repair_install_decomposes_recovery_spans() {
        // Permanent fault healed by a repairer: the TableRepair span
        // ends at the install, Redelivery picks up from there, and the
        // two still telescope to `time_to_recover` exactly.
        let (r, rs) = ring4();
        let dead = cw_link_0_to_1(&rs);
        let detour: Vec<ChannelId> = rs.path(1, 0).iter().rev().map(|c| c.reverse()).collect();
        let cfg = SimConfig {
            packet_flits: 32,
            max_cycles: 20_000,
            retry: RetryPolicy {
                ack_timeout: 8,
                max_retries: 4,
                backoff_base: 8,
                jitter_seed: 1,
            },
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::kill_link(dead, 8))
        .with_telemetry(Telemetry::recording());
        let rs_for_repair = rs.clone();
        let res = Engine::new(r.net(), &rs, cfg)
            .with_repairer(move |_, _| {
                let detour = detour.clone();
                let base = rs_for_repair.clone();
                Some(RouteSet::from_pairs(base.len(), move |s, d| {
                    if (s, d) == (0, 1) {
                        detour.clone()
                    } else {
                        base.path(s, d).to_vec()
                    }
                }))
            })
            .run(Workload::Scripted(vec![(0, 0, 1)]));
        assert_eq!(res.delivered, 1);
        let want = res.recovery.time_to_recover.expect("recovered");
        let tel = res.telemetry.expect("telemetry was recording");
        assert_eq!(tel.recovery_span_cycles(), Some(want));
        let repair = tel
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::TableRepair)
            .expect("repair span");
        let redeliver = tel
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Redelivery)
            .expect("redelivery span");
        // Install happened in the fault cycle, so the repair span is
        // the install instant's offset from the fault.
        let install = tel
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::HealInstall)
            .expect("install instant");
        assert_eq!(repair.end, install.begin);
        assert_eq!(repair.begin, 8);
        assert_eq!(redeliver.begin, repair.end);
        assert_eq!(repair.duration() + redeliver.duration(), want);
    }

    #[test]
    fn telemetry_off_attaches_no_report_and_changes_nothing() {
        let (r, rs) = ring4();
        let mk = |tel: Telemetry| {
            let cfg = SimConfig::default()
                .with_packet_flits(4)
                .with_max_cycles(3_000)
                .with_telemetry(tel);
            let wl = Workload::Bernoulli {
                injection_rate: 0.2,
                pattern: DstPattern::Uniform,
                until_cycle: 1_000,
            };
            Engine::new(r.net(), &rs, cfg).run(wl)
        };
        let off = mk(Telemetry::off());
        let on = mk(Telemetry::recording());
        assert!(off.telemetry.is_none());
        assert!(on.telemetry.is_some());
        // Recording must not perturb the simulation itself.
        assert_eq!(off.delivered, on.delivered);
        assert_eq!(off.generated, on.generated);
        assert_eq!(off.avg_latency, on.avg_latency);
        assert_eq!(off.channel_busy, on.channel_busy);
        // The histogram mean over all deliveries matches the exact
        // per-packet mean when warmup is zero.
        let tel = on.telemetry.unwrap();
        assert_eq!(tel.pre_fault_latency.count() as usize, on.delivered);
        assert!((tel.pre_fault_latency.mean() - on.avg_latency).abs() < 1e-9);
    }

    #[test]
    fn post_fault_accounting_tracks_fault_onset() {
        let (r, rs) = ring4();
        let cfg = SimConfig {
            packet_flits: 4,
            max_cycles: 10_000,
            ..SimConfig::default()
        }
        // Fault on a link unused by 2 → 3 traffic, applied mid-script.
        .with_fault(FaultEvent::kill_link(cw_link_0_to_1(&rs), 100));
        let wl = Workload::Scripted(vec![(0, 2, 3), (200, 2, 3)]);
        let res = Engine::new(r.net(), &rs, cfg).run(wl);
        assert_eq!(res.delivered, 2);
        assert_eq!(res.recovery.post_fault_generated, 1);
        assert_eq!(res.recovery.post_fault_delivered, 1);
        assert_eq!(res.recovery.post_fault_delivery_ratio(), 1.0);
    }

    // ------------------------------------------------------------------
    // Gray failures and exactly-once delivery.

    fn gray_retry() -> RetryPolicy {
        RetryPolicy {
            ack_timeout: 8,
            max_retries: 8,
            backoff_base: 8,
            jitter_seed: 1,
        }
    }

    #[test]
    fn flaky_link_drop_recovers_via_retry() {
        // A 1000‰ flaky window guarantees the first attempt is dropped
        // mid-flight; once the window closes the retry delivers.
        let (r, rs) = ring4();
        let cfg = SimConfig {
            packet_flits: 32,
            max_cycles: 20_000,
            retry: gray_retry(),
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::flaky_link(cw_link_0_to_1(&rs), 1000, 0).transient(5));
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![(0, 0, 1)]));
        assert_eq!(res.delivered, 1, "{:?}", res.recovery);
        assert!(res.recovery.flaky_drops >= 1);
        assert!(
            res.recovery.dropped_worms >= res.recovery.flaky_drops,
            "a flaky drop is a teardown"
        );
        assert!(res.recovery.retries >= 1);
        assert_eq!(res.recovery.nacks, 0, "drops are silent, not NACKed");
        assert!(res.is_clean());
    }

    #[test]
    fn corrupt_link_nacks_at_destination_and_retries() {
        // A 1000‰ corrupting window poisons the first attempt; it still
        // *arrives*, fails the CRC check, is NACKed, and the retry
        // (clean, window closed) delivers exactly once.
        let (r, rs) = ring4();
        let cfg = SimConfig {
            packet_flits: 32,
            max_cycles: 20_000,
            retry: gray_retry(),
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::corrupt_link(cw_link_0_to_1(&rs), 1000, 0).transient(5))
        .with_telemetry(Telemetry::recording());
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![(0, 0, 1)]));
        assert_eq!(res.delivered, 1, "{:?}", res.recovery);
        assert_eq!(res.recovery.corrupted_worms, 1);
        assert_eq!(res.recovery.nacks, 1);
        assert_eq!(res.recovery.dropped_worms, 0, "corruption still delivers");
        assert!(res.recovery.retries >= 1);
        assert!(res.is_clean());
        let tel = res.telemetry.expect("telemetry was recording");
        let kinds: Vec<&str> = tel.events.iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"corrupted"), "{kinds:?}");
        assert!(kinds.contains(&"nacked"), "{kinds:?}");
    }

    #[test]
    fn nack_retry_beats_the_ack_timeout_path() {
        // The NACK arrives with the (bad) packet, so the corrupt-path
        // retry fires `ack_timeout` cycles sooner than the flaky-path
        // retry for the same schedule shape.
        let (r, rs) = ring4();
        let retry = RetryPolicy {
            ack_timeout: 500,
            max_retries: 8,
            backoff_base: 8,
            jitter_seed: 1,
        };
        let run = |kind: FaultEvent| {
            let cfg = SimConfig {
                packet_flits: 32,
                max_cycles: 20_000,
                retry,
                ..SimConfig::default()
            }
            .with_fault(kind);
            Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![(0, 0, 1)]))
        };
        let corrupt = run(FaultEvent::corrupt_link(cw_link_0_to_1(&rs), 1000, 0).transient(5));
        let flaky = run(FaultEvent::flaky_link(cw_link_0_to_1(&rs), 1000, 0).transient(5));
        assert_eq!(corrupt.delivered, 1);
        assert_eq!(flaky.delivered, 1);
        let t_corrupt = corrupt.recovery.time_to_recover.expect("recovered");
        let t_flaky = flaky.recovery.time_to_recover.expect("recovered");
        assert!(
            t_corrupt + retry.ack_timeout / 2 < t_flaky,
            "NACK {t_corrupt} should beat timeout {t_flaky}"
        );
    }

    #[test]
    fn brownout_oscillation_recovers() {
        // Link browns out 30 down / 30 up: each down phase is a
        // transient outage; retries land in up phases and deliver.
        let (r, rs) = ring4();
        let cfg = SimConfig {
            packet_flits: 32,
            max_cycles: 20_000,
            retry: gray_retry(),
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::brownout(cw_link_0_to_1(&rs), 30, 30, 8).transient(250));
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![(0, 0, 1)]));
        assert_eq!(res.delivered, 1, "{:?}", res.recovery);
        assert!(res.recovery.retries >= 1);
        // Every down phase counts as an outage: 8, 68, 128, 188, 248.
        assert!(res.recovery.faults_applied >= 4, "{:?}", res.recovery);
        assert_eq!(
            res.recovery.repairs_installed, 0,
            "brownouts are transient: healing must not fire"
        );
        assert!(res.is_clean());
    }

    #[test]
    fn speculative_retransmit_duplicate_is_suppressed() {
        // ACK-timeout race: the timer fires while the original worm is
        // still draining, spawning a speculative copy. Both arrive; the
        // destination's sequence check suppresses the second, so the
        // run is exactly-once.
        let (r, rs) = ring4();
        let cfg = SimConfig {
            packet_flits: 32,
            max_cycles: 20_000,
            retry: RetryPolicy {
                ack_timeout: 1,
                max_retries: 8,
                backoff_base: 8,
                jitter_seed: 1,
            },
            ..SimConfig::default()
        }
        .with_ack_retransmit(true)
        .with_telemetry(Telemetry::recording());
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![(0, 0, 1)]));
        assert_eq!(res.generated, 1);
        assert_eq!(res.delivered, 1, "{:?}", res.recovery);
        assert_eq!(res.recovery.duplicates_suppressed, 1, "{:?}", res.recovery);
        assert_eq!(res.recovery.retries, 1);
        assert!(res.recovery.abandoned.is_empty());
        assert!(res.is_clean());
        let tel = res.telemetry.expect("telemetry was recording");
        let kinds: Vec<&str> = tel.events.iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"dup_suppressed"), "{kinds:?}");
    }

    #[test]
    fn dedup_disabled_double_delivers() {
        // The same race with the destination's sequence check turned
        // off (a broken end-node): both arrivals count, delivery is no
        // longer exactly-once, and the accounting catches it.
        let (r, rs) = ring4();
        let cfg = SimConfig {
            packet_flits: 32,
            max_cycles: 20_000,
            retry: RetryPolicy {
                ack_timeout: 1,
                max_retries: 8,
                backoff_base: 8,
                jitter_seed: 1,
            },
            ..SimConfig::default()
        }
        .with_ack_retransmit(true)
        .with_dedup(false);
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![(0, 0, 1)]));
        assert_eq!(res.generated, 1);
        assert_eq!(res.delivered, 2, "{:?}", res.recovery);
        assert_eq!(res.recovery.duplicates_suppressed, 0);
        assert!(
            !res.is_recovered(),
            "double delivery must break the exactly-once invariant"
        );
    }

    #[test]
    fn gray_faulted_runs_are_deterministic() {
        // Sustained uniform load needs a deadlock-free fabric (the
        // clockwise ring can form a circular wait on its own, Fig 1);
        // XY-routed mesh traffic makes any non-recovery a delivery bug.
        let m = Mesh2D::new(3, 3, 1, 6).unwrap();
        let rs = RouteSet::from_table(m.net(), m.end_nodes(), &mesh_xy_routes(&m)).unwrap();
        let mk = || {
            let cfg = SimConfig {
                packet_flits: 8,
                max_cycles: 12_000,
                retry: gray_retry(),
                ..SimConfig::default()
            }
            .with_fault(FaultEvent::flaky_link(rs.path(0, 1)[1].link(), 80, 20).transient(900))
            .with_fault(FaultEvent::corrupt_link(rs.path(4, 5)[1].link(), 120, 50).transient(800))
            .with_ack_retransmit(true);
            let wl = Workload::Bernoulli {
                injection_rate: 0.15,
                pattern: DstPattern::Uniform,
                until_cycle: 1_000,
            };
            Engine::new(m.net(), &rs, cfg).run(wl)
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.recovery.flaky_drops, b.recovery.flaky_drops);
        assert_eq!(a.recovery.corrupted_worms, b.recovery.corrupted_worms);
        assert_eq!(a.recovery.nacks, b.recovery.nacks);
        assert_eq!(
            a.recovery.duplicates_suppressed,
            b.recovery.duplicates_suppressed
        );
        assert_eq!(a.recovery.abandoned, b.recovery.abandoned);
        assert_eq!(a.channel_busy, b.channel_busy);
        // Exactly-once holds under sustained gray load.
        assert!(a.is_recovered(), "{:?}", a.recovery);
    }
}
