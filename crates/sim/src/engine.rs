//! The cycle-driven wormhole engine.
//!
//! State is per-channel: each unidirectional channel has the input
//! FIFO at its downstream end, an owner (the packet whose worm
//! currently occupies it), and flit accounting. One flit moves per
//! channel per cycle; heads allocate channels through round-robin
//! output arbitration; tails release them. Flow control is
//! conservative credit-based (arrivals check start-of-cycle space), so
//! a packet chain drains one flit per cycle toward any ejector — which
//! means a persistent all-idle network with traffic in flight is a
//! genuine circular wait, and the wait-for graph confirms it.

use crate::config::SimConfig;
use crate::stats::{DeadlockEvent, SimResult};
use crate::traffic::Workload;
use fractanet_deadlock::WaitGraph;
use fractanet_graph::{ChannelId, Network};
use fractanet_route::RouteSet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

const NO_PKT: u32 = u32::MAX;

#[derive(Clone)]
struct ChanState {
    /// Packet whose worm occupies this channel, or `NO_PKT`.
    owner: u32,
    /// Flits of the owner that have entered (ever) since allocation.
    entered: u32,
    /// Flits currently buffered at the downstream end.
    occ: u8,
    /// Index of this channel in the owner's path.
    route_pos: u32,
}

impl ChanState {
    fn free() -> Self {
        ChanState { owner: NO_PKT, entered: 0, occ: 0, route_pos: 0 }
    }
    /// Flit index of the buffer head.
    fn front(&self) -> u32 {
        self.entered - self.occ as u32
    }
}

struct Packet {
    src: u32,
    dst: u32,
    len: u32,
    created: u64,
    injected: u64,
    sent: u32,
}

/// One simulation instance. Borrowings keep the network and routes
/// shared across parallel sweep runs.
///
/// ```
/// use fractanet_sim::{Engine, SimConfig, Workload};
/// use fractanet_route::{fractal, RouteSet};
/// use fractanet_topo::{Fractahedron, Topology, Variant};
///
/// let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
/// let routes = fractal::fractal_routes(&f);
/// let rs = RouteSet::from_table(f.net(), f.end_nodes(), &routes).unwrap();
/// let cfg = SimConfig::default().with_packet_flits(8).with_max_cycles(10_000);
/// let result = Engine::new(f.net(), &rs, cfg).run(Workload::all_to_all_burst(8));
/// assert!(result.is_clean());
/// assert_eq!(result.delivered, 56);
/// ```
pub struct Engine<'a> {
    routes: &'a RouteSet,
    cfg: SimConfig,
    chans: Vec<ChanState>,
    packets: Vec<Packet>,
    queues: Vec<VecDeque<u32>>,
    /// Round-robin pointer per channel: last granted upstream channel.
    rr: Vec<u32>,
    busy: Vec<u64>,
    in_flight: usize,
    delivered: usize,
    delivered_flits_measured: u64,
    latencies: Vec<u64>,
    net_latencies: Vec<u64>,
    rng: StdRng,
}

impl<'a> Engine<'a> {
    /// Creates an engine over a routed network.
    pub fn new(net: &'a Network, routes: &'a RouteSet, cfg: SimConfig) -> Self {
        let nch = net.channel_count();
        let n = routes.len();
        let rng = StdRng::seed_from_u64(cfg.seed);
        Engine {
            routes,
            cfg,
            chans: vec![ChanState::free(); nch],
            packets: Vec::new(),
            queues: vec![VecDeque::new(); n],
            rr: vec![0; nch],
            busy: vec![0; nch],
            in_flight: 0,
            delivered: 0,
            delivered_flits_measured: 0,
            latencies: Vec::new(),
            net_latencies: Vec::new(),
            rng,
        }
    }

    /// Runs `workload` to completion (or `max_cycles`, or deadlock) and
    /// returns the aggregate result.
    pub fn run(mut self, mut workload: Workload) -> SimResult {
        let n = self.routes.len();
        let mut idle_cycles = 0u64;
        let mut cycle = 0u64;
        let mut generated = 0usize;
        let mut deadlock = None;

        while cycle < self.cfg.max_cycles {
            // 1. Traffic.
            for (s, d) in workload.generate(cycle, n, self.cfg.packet_flits, &mut self.rng) {
                let id = self.packets.len() as u32;
                self.packets.push(Packet {
                    src: s as u32,
                    dst: d as u32,
                    len: self.cfg.packet_flits,
                    created: cycle,
                    injected: u64::MAX,
                    sent: 0,
                });
                self.queues[s].push_back(id);
                generated += 1;
            }

            // 2. One simulation step.
            let moves = self.step(cycle);

            // 3. Termination checks.
            let drained = self.in_flight == 0 && self.queues.iter().all(VecDeque::is_empty);
            if workload.finished(cycle) && drained {
                cycle += 1;
                break;
            }
            if moves == 0 && !drained {
                idle_cycles += 1;
                if idle_cycles >= self.cfg.stall_threshold {
                    deadlock = Some(self.diagnose_deadlock(cycle));
                    cycle += 1;
                    break;
                }
            } else {
                idle_cycles = 0;
            }
            cycle += 1;
        }

        self.finish(cycle, generated, deadlock)
    }

    /// Executes one cycle of flit movement; returns how many flits
    /// moved.
    fn step(&mut self, cycle: u64) -> usize {
        let b = self.cfg.buffer_depth;
        let nch = self.chans.len();
        // Decisions on start-of-cycle state.
        let mut ejects: Vec<u32> = Vec::new();
        let mut body_moves: Vec<u32> = Vec::new();
        // Allocation requests grouped per target channel.
        let mut alloc_reqs: Vec<(u32, u32)> = Vec::new(); // (target, from)
        for ch in 0..nch as u32 {
            let st = &self.chans[ch as usize];
            if st.occ == 0 {
                continue;
            }
            let p = &self.packets[st.owner as usize];
            let path = self.routes.path(p.src as usize, p.dst as usize);
            if st.route_pos as usize == path.len() - 1 {
                ejects.push(ch);
                continue;
            }
            let next = path[st.route_pos as usize + 1];
            let nst = &self.chans[next.index()];
            if st.front() == 0 {
                if nst.owner == NO_PKT && nst.occ < b {
                    alloc_reqs.push((next.0, ch));
                }
            } else {
                debug_assert_eq!(nst.owner, st.owner, "body flit lost its worm");
                if nst.occ < b {
                    body_moves.push(ch);
                }
            }
        }
        // Injection decisions.
        let mut injections: Vec<usize> = Vec::new(); // source indices
        for s in 0..self.queues.len() {
            let Some(&pid) = self.queues[s].front() else { continue };
            let p = &self.packets[pid as usize];
            let c0 = self.routes.path(p.src as usize, p.dst as usize)[0];
            let st = &self.chans[c0.index()];
            let ok = if p.sent == 0 { st.owner == NO_PKT && st.occ < b } else { st.occ < b };
            if ok {
                injections.push(s);
            }
        }

        // Round-robin arbitration per allocation target.
        alloc_reqs.sort_unstable();
        let mut grants: Vec<(u32, u32)> = Vec::new(); // (target, from)
        let mut i = 0;
        while i < alloc_reqs.len() {
            let target = alloc_reqs[i].0;
            let mut j = i;
            while j < alloc_reqs.len() && alloc_reqs[j].0 == target {
                j += 1;
            }
            let group = &alloc_reqs[i..j];
            let last = self.rr[target as usize];
            let granted = group
                .iter()
                .map(|&(_, from)| from)
                .find(|&from| from > last)
                .unwrap_or(group[0].1);
            self.rr[target as usize] = granted;
            grants.push((target, granted));
            i = j;
        }

        let mut moves = 0usize;
        // Apply ejections.
        for ch in ejects {
            moves += 1;
            let (owner, flit) = {
                let st = &mut self.chans[ch as usize];
                let flit = st.front();
                st.occ -= 1;
                (st.owner, flit)
            };
            let done = {
                let p = &self.packets[owner as usize];
                flit == p.len - 1
            };
            if cycle >= self.cfg.warmup_cycles {
                self.delivered_flits_measured += 1;
            }
            if done {
                self.chans[ch as usize].owner = NO_PKT;
                self.in_flight -= 1;
                self.delivered += 1;
                let p = &self.packets[owner as usize];
                if p.created >= self.cfg.warmup_cycles {
                    self.latencies.push(cycle + 1 - p.created);
                    self.net_latencies.push(cycle + 1 - p.injected);
                }
            }
        }
        // Apply body transfers.
        for ch in body_moves {
            moves += 1;
            let (owner, flit, pos) = {
                let st = &mut self.chans[ch as usize];
                let flit = st.front();
                st.occ -= 1;
                (st.owner, flit, st.route_pos)
            };
            let p = &self.packets[owner as usize];
            let next = self.routes.path(p.src as usize, p.dst as usize)[pos as usize + 1];
            if flit == p.len - 1 {
                self.chans[ch as usize].owner = NO_PKT;
            }
            let nst = &mut self.chans[next.index()];
            nst.entered += 1;
            nst.occ += 1;
            self.busy[next.index()] += 1;
        }
        // Apply granted head allocations.
        for (target, from) in grants {
            moves += 1;
            let (owner, flit, pos) = {
                let st = &mut self.chans[from as usize];
                let flit = st.front();
                st.occ -= 1;
                (st.owner, flit, st.route_pos)
            };
            debug_assert_eq!(flit, 0, "allocation moves the head flit");
            let p = &self.packets[owner as usize];
            if flit == p.len - 1 {
                // Single-flit packet: head is also tail.
                self.chans[from as usize].owner = NO_PKT;
            }
            let nst = &mut self.chans[target as usize];
            nst.owner = owner;
            nst.entered = 1;
            nst.occ = 1;
            nst.route_pos = pos + 1;
            self.busy[target as usize] += 1;
        }
        // Apply injections.
        for s in injections {
            moves += 1;
            let pid = *self.queues[s].front().expect("checked above");
            let (c0, sent_after, len) = {
                let p = &mut self.packets[pid as usize];
                p.sent += 1;
                if p.sent == 1 {
                    p.injected = cycle;
                    self.in_flight += 1;
                }
                (
                    self.routes.path(p.src as usize, p.dst as usize)[0],
                    p.sent,
                    p.len,
                )
            };
            let st = &mut self.chans[c0.index()];
            if sent_after == 1 {
                st.owner = pid;
                st.entered = 0;
                st.route_pos = 0;
            }
            st.entered += 1;
            st.occ += 1;
            self.busy[c0.index()] += 1;
            if sent_after == len {
                self.queues[s].pop_front();
            }
        }
        moves
    }

    fn diagnose_deadlock(&self, cycle: u64) -> DeadlockEvent {
        let mut wg = WaitGraph::new(self.chans.len());
        for (idx, st) in self.chans.iter().enumerate() {
            if st.occ == 0 || st.owner == NO_PKT {
                continue;
            }
            let p = &self.packets[st.owner as usize];
            let path = self.routes.path(p.src as usize, p.dst as usize);
            if (st.route_pos as usize) < path.len() - 1 {
                wg.add_wait(ChannelId(idx as u32), path[st.route_pos as usize + 1]);
            }
        }
        DeadlockEvent {
            cycle,
            cycle_channels: wg.find_deadlock().unwrap_or_default(),
            stuck_packets: self.in_flight,
        }
    }

    fn finish(self, cycles: u64, generated: usize, deadlock: Option<DeadlockEvent>) -> SimResult {
        let n = self.routes.len().max(1);
        let mut lats = self.latencies.clone();
        lats.sort_unstable();
        let avg = |v: &[u64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<u64>() as f64 / v.len() as f64
            }
        };
        let measured_cycles = cycles.saturating_sub(self.cfg.warmup_cycles).max(1);
        SimResult {
            cycles,
            generated,
            delivered: self.delivered,
            avg_latency: avg(&lats),
            avg_network_latency: avg(&self.net_latencies),
            p95_latency: lats
                .get((lats.len().saturating_mul(95) / 100).min(lats.len().saturating_sub(1)))
                .copied()
                .unwrap_or(0),
            max_latency: lats.last().copied().unwrap_or(0),
            throughput: self.delivered_flits_measured as f64 / measured_cycles as f64 / n as f64,
            channel_busy: self.busy,
            deadlock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::DstPattern;
    use fractanet_route::dor::mesh_xy_routes;
    use fractanet_route::fractal::fractal_routes;
    use fractanet_route::ringroute::ring_clockwise_routes;
    use fractanet_route::RouteSet;
    use fractanet_topo::{Fractahedron, Mesh2D, Ring, Topology};

    fn ring4() -> (Ring, RouteSet) {
        let r = Ring::new(4, 1, 6).unwrap();
        let rs =
            RouteSet::from_table(r.net(), r.end_nodes(), &ring_clockwise_routes(&r)).unwrap();
        (r, rs)
    }

    #[test]
    fn single_packet_delivers_with_sane_latency() {
        let (r, rs) = ring4();
        let cfg = SimConfig::default().with_packet_flits(8).with_max_cycles(500);
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![(0, 0, 1)]));
        assert!(res.is_clean());
        assert_eq!(res.delivered, 1);
        // 8 flits over 3 channels: latency ≈ hops + flits, well under 50.
        assert!(res.avg_latency >= 10.0 && res.avg_latency < 50.0, "{}", res.avg_latency);
        assert!(res.avg_network_latency <= res.avg_latency);
    }

    #[test]
    fn fig1_deadlocks_on_clockwise_ring() {
        // Figure 1: four simultaneous wrap-around transfers, packets
        // long enough that tails still hold the first link when heads
        // block.
        let (r, rs) = ring4();
        let cfg = SimConfig {
            packet_flits: 32,
            buffer_depth: 2,
            max_cycles: 10_000,
            stall_threshold: 200,
            ..SimConfig::default()
        };
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::fig1_ring(4));
        let dl = res.deadlock.expect("Fig 1 must deadlock");
        assert!(!dl.cycle_channels.is_empty(), "circular wait must be found");
        assert_eq!(dl.stuck_packets, 4);
        assert_eq!(res.delivered, 0);
    }

    #[test]
    fn fig1_pattern_completes_on_mesh_dor() {
        // The same four routers as a 2x2 mesh under dimension-order
        // routing: "routes A and C would be allowed, but routes B and
        // D would be disallowed, thus preventing the deadlock".
        let m = Mesh2D::new(2, 2, 1, 6).unwrap();
        let rs = RouteSet::from_table(m.net(), m.end_nodes(), &mesh_xy_routes(&m)).unwrap();
        let cfg = SimConfig {
            packet_flits: 32,
            buffer_depth: 2,
            max_cycles: 10_000,
            stall_threshold: 200,
            ..SimConfig::default()
        };
        // Same logical pattern: every node sends to the diagonal node.
        let wl = Workload::Scripted(vec![(0, 0, 3), (0, 1, 2), (0, 2, 1), (0, 3, 0)]);
        let res = Engine::new(m.net(), &rs, cfg).run(wl);
        assert!(res.is_clean(), "DOR must not deadlock: {:?}", res.deadlock);
        assert_eq!(res.delivered, 4);
    }

    #[test]
    fn all_to_all_on_fractahedron_completes() {
        let f = Fractahedron::new(1, fractanet_topo::Variant::Fat, false).unwrap();
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &fractal_routes(&f)).unwrap();
        let cfg = SimConfig::default().with_packet_flits(8).with_max_cycles(20_000);
        let res = Engine::new(f.net(), &rs, cfg).run(Workload::all_to_all_burst(8));
        assert!(res.is_clean());
        assert_eq!(res.delivered, 56);
        assert!(res.throughput > 0.0);
    }

    #[test]
    fn uniform_load_on_fat_64_is_deadlock_free() {
        let f = Fractahedron::paper_fat_64();
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &fractal_routes(&f)).unwrap();
        let cfg = SimConfig {
            packet_flits: 8,
            max_cycles: 8_000,
            stall_threshold: 2_000,
            ..SimConfig::default()
        };
        let wl = Workload::Bernoulli {
            injection_rate: 0.1,
            pattern: DstPattern::Uniform,
            until_cycle: 4_000,
        };
        let res = Engine::new(f.net(), &rs, cfg).run(wl);
        assert!(res.deadlock.is_none());
        assert!(res.delivered > 0);
        assert!(res.delivery_ratio() > 0.95, "{} of {}", res.delivered, res.generated);
    }

    #[test]
    fn latency_grows_with_load() {
        let f = Fractahedron::paper_fat_64();
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &fractal_routes(&f)).unwrap();
        let mut avg = Vec::new();
        for rate in [0.05, 0.55] {
            let cfg = SimConfig {
                packet_flits: 8,
                max_cycles: 6_000,
                stall_threshold: 3_000,
                warmup_cycles: 500,
                ..SimConfig::default()
            };
            let wl = Workload::Bernoulli {
                injection_rate: rate,
                pattern: DstPattern::Uniform,
                until_cycle: 4_000,
            };
            let res = Engine::new(f.net(), &rs, cfg).run(wl);
            assert!(res.deadlock.is_none());
            avg.push(res.avg_latency);
        }
        assert!(avg[1] > avg[0], "latency must rise with load: {avg:?}");
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let (r, rs) = ring4();
        let mk = || {
            let cfg = SimConfig::default().with_packet_flits(4).with_max_cycles(3_000);
            let wl = Workload::Bernoulli {
                injection_rate: 0.2,
                pattern: DstPattern::Uniform,
                until_cycle: 1_000,
            };
            Engine::new(r.net(), &rs, cfg).run(wl)
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.avg_latency, b.avg_latency);
        assert_eq!(a.channel_busy, b.channel_busy);
    }

    #[test]
    fn busy_counts_match_flit_volume() {
        let (r, rs) = ring4();
        let cfg = SimConfig::default().with_packet_flits(4).with_max_cycles(1_000);
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![(0, 0, 1)]));
        // One 4-flit packet over a 3-channel path: 12 channel entries.
        let total: u64 = res.channel_busy.iter().sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn single_flit_packets_work() {
        // A 1-flit packet's head is also its tail: allocation and
        // release collapse into one hop each.
        let (r, rs) = ring4();
        let cfg = SimConfig::default().with_packet_flits(1).with_max_cycles(2_000);
        let res = Engine::new(r.net(), &rs, cfg).run(Workload::all_to_all_burst(4));
        assert!(res.is_clean(), "{:?}", res.deadlock);
        assert_eq!(res.delivered, 12);
        // One flit per channel crossing.
        let total: u64 = res.channel_busy.iter().sum();
        let expect: u64 = (0..4)
            .flat_map(|s| (0..4).filter(move |&d| d != s).map(move |d| (s, d)))
            .map(|(s, d)| rs.path(s, d).len() as u64)
            .sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn deep_buffers_do_not_change_delivery() {
        let (r, rs) = ring4();
        let mut delivered = Vec::new();
        for depth in [1u8, 4, 16] {
            let cfg = SimConfig {
                packet_flits: 8,
                buffer_depth: depth,
                max_cycles: 20_000,
                ..SimConfig::default()
            };
            let res = Engine::new(r.net(), &rs, cfg).run(Workload::Scripted(vec![
                (0, 0, 1),
                (0, 1, 2),
                (5, 2, 3),
            ]));
            assert!(res.is_clean());
            delivered.push(res.delivered);
        }
        assert!(delivered.iter().all(|&d| d == 3));
    }

    #[test]
    fn queueing_at_source_counts_in_latency() {
        // Two packets back-to-back from the same source: the second
        // waits for the first's tail to clear the injection channel.
        let (r, rs) = ring4();
        let cfg = SimConfig::default().with_packet_flits(8).with_max_cycles(1_000);
        let wl = Workload::Scripted(vec![(0, 0, 2), (0, 0, 2)]);
        let res = Engine::new(r.net(), &rs, cfg).run(wl);
        assert!(res.is_clean());
        assert_eq!(res.delivered, 2);
        assert!(res.max_latency > res.avg_network_latency as u64);
    }
}
