//! Metrics trace files: a JSONL record of one run — config echo,
//! fault timeline, injection schedule, periodic samples, final counts
//! — and the reconstruction that replays it through the engine.
//!
//! ## Why replay is exact
//!
//! The engine consumes its workload RNG stream *only* inside
//! `Workload::generate`; retry jitter and gray-failure dice come from
//! separate streams seeded independently. A scripted workload draws
//! nothing from the workload stream, so re-running the recorded
//! `(cycle, src, dst)` injection triples under the echoed config and
//! fault schedule reproduces the original dynamics cycle for cycle:
//! delivered/abandoned counts and every latency quantile must match
//! the recorded finals exactly, at every `--threads` width. (The
//! simulated cycle count may differ by the drain tail — a Bernoulli
//! workload only "finishes" at its horizon, a script when consumed —
//! so it is recorded but not asserted.)
//!
//! Line types, one JSON object per line:
//!
//! * `{"type":"meta", ...}` — topology spec and the full config echo.
//! * `{"type":"fault","fault":{...}}` — one scheduled fault, in the
//!   chaos scenario shape.
//! * `{"type":"inject","cycle":C,"src":S,"dst":D}` — one generated
//!   packet.
//! * `{"type":"sample", ...}` — one periodic metrics sample
//!   (informational; not needed for replay).
//! * `{"type":"final", ...}` — the recorded outcome replay checks
//!   against.

use crate::chaos::{fault_from_json, fault_to_json};
use crate::config::SimConfig;
use crate::fault::RetryPolicy;
use crate::jsonin::{get, get_num, get_str, json_parse};
use crate::stats::SimResult;
use crate::traffic::Workload;
use fractanet_graph::json::JsonObject;
use fractanet_telemetry::{MetricsConfig, MetricsReport};

/// The recorded outcome a replay must reproduce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceExpectation {
    /// Cycles the recorded run simulated (informational — the drain
    /// tail may differ under a scripted workload).
    pub cycles: u64,
    /// Packets generated.
    pub generated: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets abandoned to the failover layer.
    pub abandoned: u64,
    /// Whole-run latency quantiles (log2-bucket upper bounds) and the
    /// exact maximum.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum latency.
    pub max: u64,
}

/// A parsed trace file: everything needed to re-run the recorded
/// simulation and check it against the recorded outcome.
#[derive(Clone, Debug)]
pub struct RecordedTrace {
    /// Topology spec string (`ring:4`, `fat-fractahedron:2`, …) — the
    /// caller rebuilds the network/routes from it.
    pub spec: String,
    /// Reconstructed engine config: seed, retry policy, fault
    /// schedule, dedup/ack-retransmit flags, thread width, and the
    /// metrics configuration (metrics must be on for the replay so
    /// quantiles are recomputed the same way).
    pub cfg: SimConfig,
    /// Whether the recorded run had a healing repairer attached — the
    /// engine config cannot express this (repairers are closures), so
    /// the trace carries it and the caller re-attaches the same one.
    pub heal: bool,
    /// The recorded injection schedule.
    pub injections: Vec<(u64, usize, usize)>,
    /// The recorded outcome.
    pub expected: TraceExpectation,
}

impl RecordedTrace {
    /// The scripted workload reproducing the recorded injections.
    pub fn workload(&self) -> Workload {
        Workload::Scripted(self.injections.clone())
    }

    /// Checks a replay result against the recorded finals. Returns the
    /// list of mismatches (empty = exact reproduction).
    pub fn check(&self, result: &SimResult) -> Vec<String> {
        let mut bad = Vec::new();
        let mut want = |name: &str, got: u64, exp: u64| {
            if got != exp {
                bad.push(format!("{name}: replay {got} != recorded {exp}"));
            }
        };
        want(
            "generated",
            result.generated as u64,
            self.expected.generated,
        );
        want(
            "delivered",
            result.delivered as u64,
            self.expected.delivered,
        );
        want(
            "abandoned",
            result.recovery.abandoned.len() as u64,
            self.expected.abandoned,
        );
        match &result.metrics {
            Some(m) => {
                want("p50", m.latency.p50(), self.expected.p50);
                want("p95", m.latency.p95(), self.expected.p95);
                want("p99", m.latency.p99(), self.expected.p99);
                want("max", m.latency.max(), self.expected.max);
            }
            None => bad.push("replay ran without metrics; quantiles unchecked".to_string()),
        }
        bad
    }
}

fn flag(on: bool) -> u64 {
    u64::from(on)
}

/// Serializes a finished run as a JSONL trace. `spec` is the topology
/// spec string replay rebuilds the network from; `heal` records
/// whether a healing repairer was attached (replay must re-attach the
/// same one); `cfg` is the config the run used; `report` is the run's
/// metrics report (the trace format rides on the injection log metrics
/// keep).
pub fn write_trace(spec: &str, heal: bool, cfg: &SimConfig, report: &MetricsReport) -> String {
    let mut out = String::new();
    out.push_str(
        &JsonObject::new()
            .field_str("type", "meta")
            .field_str("spec", spec)
            .field_str("topology", &report.topology)
            .field_num("seed", cfg.seed)
            .field_num("buffer_depth", cfg.buffer_depth as u64)
            .field_num("credit_delay", cfg.credit_delay)
            .field_num("vcs", cfg.vcs as u64)
            .field_num("packet_flits", cfg.packet_flits as u64)
            .field_num("max_cycles", cfg.max_cycles)
            .field_num("stall_threshold", cfg.stall_threshold)
            .field_num("warmup_cycles", cfg.warmup_cycles)
            .field_num("ack_timeout", cfg.retry.ack_timeout)
            .field_num("max_retries", cfg.retry.max_retries as u64)
            .field_num("backoff_base", cfg.retry.backoff_base)
            .field_num("jitter_seed", cfg.retry.jitter_seed)
            .field_num("ack_retransmit", flag(cfg.ack_retransmit))
            .field_num("dedup", flag(cfg.dedup))
            .field_num("heal", flag(heal))
            .field_num("threads", cfg.threads as u64)
            .field_num("sample_every", report.sample_every)
            .field_num("window", report.window)
            .field_num("groups", report.groups)
            .field_num("deadline", report.deadline)
            .build(),
    );
    out.push('\n');
    for f in &cfg.faults {
        out.push_str(
            &JsonObject::new()
                .field_str("type", "fault")
                .field_raw("fault", &fault_to_json(f).build())
                .build(),
        );
        out.push('\n');
    }
    for &(cycle, src, dst) in &report.injections {
        out.push_str(
            &JsonObject::new()
                .field_str("type", "inject")
                .field_num("cycle", cycle)
                .field_num("src", src as u64)
                .field_num("dst", dst as u64)
                .build(),
        );
        out.push('\n');
    }
    for s in &report.samples {
        out.push_str(
            &JsonObject::new()
                .field_str("type", "sample")
                .field_num("cycle", s.cycle)
                .field_num("delivered", s.delivered)
                .field_num("in_flight", s.in_flight)
                .field_num("epoch", s.routing_epoch)
                .field_num("window_p50", s.window_p50)
                .field_num("window_p99", s.window_p99)
                .build(),
        );
        out.push('\n');
    }
    out.push_str(
        &JsonObject::new()
            .field_str("type", "final")
            .field_num("cycles", report.cycles)
            .field_num("generated", report.totals.generated)
            .field_num("delivered", report.totals.delivered)
            .field_num("abandoned", report.totals.abandoned)
            .field_num("p50", report.latency.p50())
            .field_num("p95", report.latency.p95())
            .field_num("p99", report.latency.p99())
            .field_num("max", report.latency.max())
            .build(),
    );
    out.push('\n');
    out
}

/// Parses the JSONL format [`write_trace`] writes.
pub fn parse_trace(text: &str) -> Result<RecordedTrace, String> {
    let mut spec = None;
    let mut cfg = SimConfig::default();
    let mut heal = false;
    let mut injections: Vec<(u64, usize, usize)> = Vec::new();
    let mut expected = None;
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json_parse(line).map_err(|e| format!("line {}: {e}", no + 1))?;
        let obj = v
            .as_obj()
            .ok_or_else(|| format!("line {}: not an object", no + 1))?;
        let at = |e: String| format!("line {}: {e}", no + 1);
        match get_str(obj, "type").map_err(at)?.as_str() {
            "meta" => {
                spec = Some(get_str(obj, "spec").map_err(at)?);
                cfg = SimConfig {
                    buffer_depth: get_num(obj, "buffer_depth").map_err(at)? as u32,
                    // Optional for traces recorded before credit flow
                    // control grew knobs: absent means the historical
                    // semantics (instant credits, one VC).
                    credit_delay: get_num(obj, "credit_delay").unwrap_or(0),
                    vcs: get_num(obj, "vcs").unwrap_or(1).max(1) as u8,
                    packet_flits: get_num(obj, "packet_flits").map_err(at)? as u32,
                    max_cycles: get_num(obj, "max_cycles").map_err(at)?,
                    stall_threshold: get_num(obj, "stall_threshold").map_err(at)?,
                    warmup_cycles: get_num(obj, "warmup_cycles").map_err(at)?,
                    seed: get_num(obj, "seed").map_err(at)?,
                    faults: std::mem::take(&mut cfg.faults),
                    retry: RetryPolicy {
                        ack_timeout: get_num(obj, "ack_timeout").map_err(at)?,
                        max_retries: get_num(obj, "max_retries").map_err(at)? as u32,
                        backoff_base: get_num(obj, "backoff_base").map_err(at)?,
                        jitter_seed: get_num(obj, "jitter_seed").map_err(at)?,
                    },
                    telemetry: cfg.telemetry,
                    metrics: MetricsConfig::sampling(get_num(obj, "sample_every").map_err(at)?)
                        .with_window(get_num(obj, "window").map_err(at)? as usize)
                        .with_groups(get_num(obj, "groups").map_err(at)? as usize)
                        .with_deadline(get_num(obj, "deadline").map_err(at)?)
                        .with_topology(&get_str(obj, "topology").map_err(at)?),
                    ack_retransmit: get_num(obj, "ack_retransmit").map_err(&at)? != 0,
                    dedup: get_num(obj, "dedup").map_err(&at)? != 0,
                    threads: get_num(obj, "threads").map_err(&at)?.max(1) as usize,
                };
                heal = get_num(obj, "heal").map_err(at)? != 0;
            }
            "fault" => {
                let fo = get(obj, "fault")
                    .map_err(&at)?
                    .as_obj()
                    .ok_or_else(|| at("fault must be an object".into()))?;
                cfg.faults.push(fault_from_json(fo).map_err(at)?);
            }
            "inject" => injections.push((
                get_num(obj, "cycle").map_err(&at)?,
                get_num(obj, "src").map_err(&at)? as usize,
                get_num(obj, "dst").map_err(at)? as usize,
            )),
            "sample" => {}
            "final" => {
                expected = Some(TraceExpectation {
                    cycles: get_num(obj, "cycles").map_err(&at)?,
                    generated: get_num(obj, "generated").map_err(&at)?,
                    delivered: get_num(obj, "delivered").map_err(&at)?,
                    abandoned: get_num(obj, "abandoned").map_err(&at)?,
                    p50: get_num(obj, "p50").map_err(&at)?,
                    p95: get_num(obj, "p95").map_err(&at)?,
                    p99: get_num(obj, "p99").map_err(&at)?,
                    max: get_num(obj, "max").map_err(at)?,
                });
            }
            other => return Err(at(format!("unknown line type {other:?}"))),
        }
    }
    Ok(RecordedTrace {
        spec: spec.ok_or("trace has no meta line")?,
        cfg,
        heal,
        injections,
        expected: expected.ok_or("trace has no final line")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::fault::FaultEvent;
    use crate::traffic::DstPattern;
    use fractanet_graph::LinkId;
    use fractanet_route::ringroute::ring_clockwise_routes;
    use fractanet_route::RouteSet;
    use fractanet_topo::{Ring, Topology};

    fn ring4() -> (Ring, RouteSet) {
        let r = Ring::new(4, 1, 6).unwrap();
        let rs = RouteSet::from_table(r.net(), r.end_nodes(), &ring_clockwise_routes(&r)).unwrap();
        (r, rs)
    }

    fn record_cfg() -> SimConfig {
        SimConfig::default()
            .with_packet_flits(6)
            .with_max_cycles(4_000)
            .with_seed(0xDECAF)
            .with_fault(FaultEvent::kill_link(LinkId(2), 150).transient(600))
            .with_metrics(
                MetricsConfig::sampling(100)
                    .with_window(4)
                    .with_topology("ring:4"),
            )
    }

    fn bernoulli() -> Workload {
        Workload::Bernoulli {
            injection_rate: 0.3,
            pattern: DstPattern::Uniform,
            until_cycle: 1_500,
        }
    }

    #[test]
    fn trace_round_trips_and_replays_exactly() {
        let (r, rs) = ring4();
        let cfg = record_cfg();
        let recorded = Engine::new(r.net(), &rs, cfg.clone()).run(bernoulli());
        let report = recorded.metrics.as_ref().expect("metrics on");
        assert!(report.totals.generated > 0);

        let text = write_trace("ring:4", false, &cfg, report);
        let trace = parse_trace(&text).expect("parse");
        assert_eq!(trace.spec, "ring:4");
        assert!(!trace.heal);
        assert_eq!(trace.cfg.seed, cfg.seed);
        assert_eq!(trace.cfg.faults, cfg.faults);
        assert_eq!(trace.injections.len(), report.totals.generated as usize);
        assert_eq!(trace.expected.delivered, recorded.delivered as u64);

        // Replay through a fresh engine: scripted injections, echoed
        // config — the recorded outcome must reproduce exactly.
        let replayed = Engine::new(r.net(), &rs, trace.cfg.clone()).run(trace.workload());
        let bad = trace.check(&replayed);
        assert!(bad.is_empty(), "replay mismatches: {bad:?}");

        // And the replay's own trace re-serializes the same finals.
        let report2 = replayed.metrics.as_ref().unwrap();
        assert_eq!(report2.latency, report.latency);
    }

    #[test]
    fn replay_is_threads_invariant() {
        let (r, rs) = ring4();
        let cfg = record_cfg();
        let recorded = Engine::new(r.net(), &rs, cfg.clone()).run(bernoulli());
        let text = write_trace("ring:4", false, &cfg, recorded.metrics.as_ref().unwrap());
        let trace = parse_trace(&text).unwrap();
        for threads in [1, 2, 4] {
            let cfg = trace.cfg.clone().with_threads(threads);
            let replayed = Engine::new(r.net(), &rs, cfg).run(trace.workload());
            let bad = trace.check(&replayed);
            assert!(bad.is_empty(), "threads={threads}: {bad:?}");
        }
    }

    #[test]
    fn check_reports_mismatches() {
        let (r, rs) = ring4();
        let cfg = record_cfg();
        let recorded = Engine::new(r.net(), &rs, cfg.clone()).run(bernoulli());
        let text = write_trace("ring:4", true, &cfg, recorded.metrics.as_ref().unwrap());
        let mut trace = parse_trace(&text).unwrap();
        assert!(trace.heal);
        trace.expected.delivered += 1;
        let replayed = Engine::new(r.net(), &rs, trace.cfg.clone()).run(trace.workload());
        assert!(!trace.check(&replayed).is_empty());
    }

    #[test]
    fn parse_rejects_malformed_traces() {
        assert!(parse_trace("").is_err());
        assert!(parse_trace("{\"type\":\"meta\"}").is_err());
        assert!(parse_trace("{\"type\":\"warp\"}").is_err());
        assert!(parse_trace("not json\n").is_err());
    }
}
