//! Simulation results.

use fractanet_graph::ChannelId;
use fractanet_telemetry::{MetricsReport, TelemetryReport};

/// Evidence of a wormhole deadlock observed at runtime.
#[derive(Clone, Debug)]
pub struct DeadlockEvent {
    /// Cycle at which the verdict was reached.
    pub cycle: u64,
    /// The circular wait (channels), when one was found; a stall with
    /// no cycle (should not happen under this flow control) is
    /// reported with an empty vector.
    pub cycle_channels: Vec<ChannelId>,
    /// Packets still in flight at the verdict.
    pub stuck_packets: usize,
}

/// Fault-recovery accounting for a run with live fault injection.
/// All-zero (the default) for runs without faults.
#[derive(Clone, Debug, Default)]
pub struct RecoveryStats {
    /// Outage events applied (repairs not counted).
    pub faults_applied: u64,
    /// Repaired routing tables installed mid-run.
    pub repairs_installed: u64,
    /// In-flight worms torn down: truncated by an outage, or drained
    /// when repaired tables installed (the two routing epochs must not
    /// mix in the fabric).
    pub dropped_worms: u64,
    /// Retransmission attempts scheduled by the retry policy.
    pub retries: u64,
    /// `(src, dst)` of packets abandoned after `max_retries` — the
    /// dual-fabric layer replays these on the other fabric.
    pub abandoned: Vec<(usize, usize)>,
    /// Cycles from the first fault to the first *retried* packet
    /// delivered. Stays `None` — never zero — when faults were
    /// injected but no retried packet completed (all abandoned, or the
    /// run ended first): "recovered instantly" and "never recovered"
    /// must not be conflated. When telemetry is recording, the
    /// span decomposition (`TableRepair` + `Redelivery`) sums to
    /// exactly this value.
    pub time_to_recover: Option<u64>,
    /// Packets created at or after the first fault.
    pub post_fault_generated: usize,
    /// Of those, packets delivered.
    pub post_fault_delivered: usize,
    /// Worms dropped by a flaky link (counted within `dropped_worms`
    /// as well — a flaky drop is a teardown).
    pub flaky_drops: u64,
    /// Worms that crossed a corrupting link (their CRC will fail).
    pub corrupted_worms: u64,
    /// Destination CRC failures answered with a NACK ("This Packet
    /// Bad") — each feeds the retry machinery without the ACK timeout.
    pub nacks: u64,
    /// Duplicate arrivals suppressed by per-pair sequence numbers
    /// (original and timeout-retransmit both arrived).
    pub duplicates_suppressed: u64,
}

impl RecoveryStats {
    /// Fraction of post-fault traffic delivered (1.0 when no packet
    /// was created after the first fault).
    pub fn post_fault_delivery_ratio(&self) -> f64 {
        if self.post_fault_generated == 0 {
            1.0
        } else {
            self.post_fault_delivered as f64 / self.post_fault_generated as f64
        }
    }
}

/// Credit-based flow-control accounting for one run. With the default
/// infinite buffers and zero credit delay the engine behaves exactly
/// like the legacy instantaneous-space-check router, but the ledger is
/// still kept: `consumed` counts flit arrivals into channel FIFOs,
/// `returned` counts the matching frees, and at quiescence the two are
/// equal (credit conservation — CI asserts this on faulted runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CreditStats {
    /// Credits consumed: flits accepted into a channel FIFO.
    pub consumed: u64,
    /// Credits returned upstream: flits that left a channel FIFO
    /// (forwarded, ejected, or torn down).
    pub returned: u64,
    /// Transfers that stalled *because* the downstream FIFO had no
    /// credit (the VC itself was free) — the head-of-line cost of
    /// finite buffering, as distinct from channel-ownership blocking.
    pub stalls: u64,
}

impl CreditStats {
    /// Whether every consumed credit was returned (true at quiescence;
    /// in-flight flits or pending delayed returns make it false).
    pub fn is_conserved(&self) -> bool {
        self.consumed == self.returned
    }
}

/// Aggregate result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Cycles actually simulated.
    pub cycles: u64,
    /// Packets created by the workload.
    pub generated: usize,
    /// Packets fully delivered.
    pub delivered: usize,
    /// Mean end-to-end packet latency in cycles (creation → tail
    /// ejected), over measured (post-warm-up) deliveries.
    pub avg_latency: f64,
    /// Mean network latency (head injected → tail ejected).
    pub avg_network_latency: f64,
    /// 95th-percentile end-to-end latency.
    pub p95_latency: u64,
    /// Worst observed end-to-end latency.
    pub max_latency: u64,
    /// Delivered flits per node per cycle (accepted throughput).
    pub throughput: f64,
    /// Busy cycles per channel, indexed by `ChannelId::index()`.
    pub channel_busy: Vec<u64>,
    /// The deadlock verdict, if the run deadlocked.
    pub deadlock: Option<DeadlockEvent>,
    /// Fault-injection and recovery accounting.
    pub recovery: RecoveryStats,
    /// Credit flow-control accounting (all zero only on runs that
    /// moved no flits).
    pub credits: CreditStats,
    /// Flit-level telemetry report — `Some` iff the run's
    /// `SimConfig::telemetry` was recording.
    pub telemetry: Option<TelemetryReport>,
    /// Live-metrics report (counters, window quantiles, SLO classes,
    /// anomalies, injection log) — `Some` iff the run's
    /// `SimConfig::metrics` was on.
    pub metrics: Option<MetricsReport>,
}

impl SimResult {
    /// Fraction of generated packets delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.generated == 0 {
            1.0
        } else {
            self.delivered as f64 / self.generated as f64
        }
    }

    /// Whether the run completed without deadlock and delivered
    /// everything it generated.
    pub fn is_clean(&self) -> bool {
        self.deadlock.is_none() && self.delivered == self.generated
    }

    /// Whether the run survived its faults: no deadlock, and every
    /// generated packet was either delivered or handed to the
    /// failover layer as abandoned.
    pub fn is_recovered(&self) -> bool {
        self.deadlock.is_none() && self.delivered + self.recovery.abandoned.len() == self.generated
    }

    /// Peak channel utilization (busy fraction of the busiest channel).
    pub fn peak_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let max = self.channel_busy.iter().copied().max().unwrap_or(0);
        max as f64 / self.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> SimResult {
        SimResult {
            cycles: 100,
            generated: 10,
            delivered: 10,
            avg_latency: 25.0,
            avg_network_latency: 20.0,
            p95_latency: 40,
            max_latency: 50,
            throughput: 0.2,
            channel_busy: vec![10, 50, 0],
            deadlock: None,
            recovery: RecoveryStats::default(),
            credits: CreditStats::default(),
            telemetry: None,
            metrics: None,
        }
    }

    #[test]
    fn ratios() {
        let r = blank();
        assert_eq!(r.delivery_ratio(), 1.0);
        assert!(r.is_clean());
        assert_eq!(r.peak_utilization(), 0.5);
    }

    #[test]
    fn deadlock_marks_unclean() {
        let mut r = blank();
        r.deadlock = Some(DeadlockEvent {
            cycle: 42,
            cycle_channels: vec![ChannelId(0)],
            stuck_packets: 4,
        });
        assert!(!r.is_clean());
    }

    #[test]
    fn credit_conservation_is_consumed_eq_returned() {
        let mut c = CreditStats {
            consumed: 7,
            returned: 7,
            stalls: 3,
        };
        assert!(c.is_conserved());
        c.returned = 6; // one flit still buffered or one return in flight
        assert!(!c.is_conserved());
    }

    #[test]
    fn zero_generated_ratio_is_one() {
        let mut r = blank();
        r.generated = 0;
        r.delivered = 0;
        assert_eq!(r.delivery_ratio(), 1.0);
    }
}
