//! Property tests for the wormhole engines: conservation laws and
//! timing bounds must hold for arbitrary workloads.

use fractanet_graph::LinkId;
use fractanet_route::fractal::fractal_routes;
use fractanet_route::RouteSet;
use fractanet_sim::vc::{dateline_ring_routes, VcEngine};
use fractanet_sim::{Engine, FaultEvent, RetryPolicy, SimConfig, Workload};
use fractanet_topo::{Fractahedron, Ring, Topology, Variant};
use proptest::prelude::*;

fn tetra() -> (Fractahedron, RouteSet) {
    let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
    let routes = fractal_routes(&f);
    let rs = RouteSet::from_table(f.net(), f.end_nodes(), &routes).unwrap();
    (f, rs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary scripted workloads on a deadlock-free system deliver
    /// everything, conserve flits exactly, and respect the zero-load
    /// latency floor.
    #[test]
    fn scripted_workloads_conserve_flits(
        pkts in prop::collection::vec((0u64..50, 0usize..8, 0usize..8), 1..25),
        flits in 2u32..12,
    ) {
        let (f, rs) = tetra();
        let script: Vec<(u64, usize, usize)> =
            pkts.into_iter().filter(|&(_, s, d)| s != d).collect();
        let n_pkts = script.len();
        let expected_flits: u64 = script
            .iter()
            .map(|&(_, s, d)| flits as u64 * rs.path(s, d).len() as u64)
            .sum();
        let floors: Vec<u64> = script
            .iter()
            .map(|&(_, s, d)| rs.path(s, d).len() as u64 + flits as u64)
            .collect();
        let cfg = SimConfig {
            packet_flits: flits,
            buffer_depth: 2,
            max_cycles: 200_000,
            stall_threshold: 5_000,
            ..SimConfig::default()
        };
        let res = Engine::new(f.net(), &rs, cfg).run(Workload::Scripted(script));
        prop_assert!(res.is_clean(), "{:?}", res.deadlock);
        prop_assert_eq!(res.delivered, n_pkts);
        prop_assert_eq!(res.channel_busy.iter().sum::<u64>(), expected_flits);
        if let Some(&floor) = floors.iter().min() {
            // The fastest packet cannot beat pipeline physics.
            prop_assert!(res.avg_latency >= floor as f64 || n_pkts == 0);
        }
    }

    /// The engine is a function of (routes, config, workload): same
    /// seed, same everything.
    #[test]
    fn engine_is_deterministic(seed in 0u64..10_000, rate in 0.05f64..0.5) {
        let (f, rs) = tetra();
        let mk = || {
            let cfg = SimConfig {
                packet_flits: 6,
                max_cycles: 3_000,
                stall_threshold: 1_500,
                seed,
                ..SimConfig::default()
            };
            Engine::new(f.net(), &rs, cfg).run(Workload::Bernoulli {
                injection_rate: rate,
                pattern: fractanet_sim::DstPattern::Uniform,
                until_cycle: 1_500,
            })
        };
        let (a, b) = (mk(), mk());
        prop_assert_eq!(a.generated, b.generated);
        prop_assert_eq!(a.delivered, b.delivered);
        prop_assert_eq!(a.channel_busy, b.channel_busy);
        prop_assert_eq!(a.avg_latency, b.avg_latency);
    }

    /// The 2-VC dateline ring never deadlocks, whatever the scripted
    /// burst looks like.
    #[test]
    fn vc_ring_never_deadlocks(
        pkts in prop::collection::vec((0u64..30, 0usize..6, 0usize..6), 1..20),
    ) {
        let ring = Ring::new(6, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 2);
        let script: Vec<(u64, usize, usize)> =
            pkts.into_iter().filter(|&(_, s, d)| s != d).collect();
        let n = script.len();
        let cfg = SimConfig {
            packet_flits: 8,
            buffer_depth: 2,
            max_cycles: 200_000,
            stall_threshold: 5_000,
            ..SimConfig::default()
        };
        let res = VcEngine::new(ring.net(), &routes, cfg).run(Workload::Scripted(script));
        prop_assert!(res.deadlock.is_none(), "{:?}", res.deadlock);
        prop_assert_eq!(res.delivered, n);
    }

    /// Throughput never exceeds offered load (open-loop conservation)
    /// and the simulator never invents packets.
    #[test]
    fn no_packet_creation_from_nothing(rate in 0.05f64..0.9, seed in 0u64..100) {
        let (f, rs) = tetra();
        let cfg = SimConfig {
            packet_flits: 8,
            max_cycles: 4_000,
            stall_threshold: 2_000,
            seed,
            ..SimConfig::default()
        };
        let res = Engine::new(f.net(), &rs, cfg).run(Workload::Bernoulli {
            injection_rate: rate,
            pattern: fractanet_sim::DstPattern::Uniform,
            until_cycle: 2_000,
        });
        prop_assert!(res.delivered <= res.generated);
        prop_assert!(res.deadlock.is_none());
        // Generated packets bounded by nodes x generation cycles.
        prop_assert!(res.generated <= 8 * 2_000);
    }

    /// Finite FIFOs and delayed credits reshape timing, never the
    /// delivery set: under a transient link kill with generous
    /// retries, every scripted packet lands exactly once at each
    /// finite depth and delay — the same set the unbounded-FIFO run
    /// delivers — and the credit ledger balances at quiescence.
    #[test]
    fn finite_fifos_deliver_the_infinite_depth_set(
        pkts in prop::collection::vec((0u64..200, 0usize..8, 0usize..8), 1..20),
        link_pick in 0usize..100_000,
        depth in 1u32..5,
        delay in 0u64..4,
    ) {
        let (f, rs) = tetra();
        let script: Vec<(u64, usize, usize)> =
            pkts.into_iter().filter(|&(_, s, d)| s != d).collect();
        if script.is_empty() { return Ok(()); }
        let n = script.len();
        let links: Vec<LinkId> = f.net().links().collect();
        let victim = links[link_pick % links.len()];
        let run = |depth: u32, delay: u64| {
            let cfg = SimConfig {
                packet_flits: 6,
                max_cycles: 60_000,
                stall_threshold: 4_000,
                retry: RetryPolicy {
                    ack_timeout: 64,
                    max_retries: 20,
                    backoff_base: 16,
                    jitter_seed: 7,
                },
                ..SimConfig::default()
            }
            .with_buffer_depth(depth)
            .with_credit_delay(delay)
            .with_fault(FaultEvent::kill_link(victim, 100).transient(700));
            Engine::new(f.net(), &rs, cfg).run(Workload::Scripted(script.clone()))
        };
        let inf = run(SimConfig::INFINITE_DEPTH, 0);
        let fin = run(depth, delay);
        for (name, r) in [("infinite", &inf), ("finite", &fin)] {
            prop_assert!(r.deadlock.is_none(), "{} run: {:?}", name, r.deadlock);
            prop_assert!(
                r.recovery.abandoned.is_empty(),
                "{} run abandoned {:?} (depth {} delay {})",
                name, r.recovery.abandoned, depth, delay
            );
            prop_assert_eq!(r.delivered, n, "{} run (depth {} delay {})", name, depth, delay);
        }
        prop_assert!(
            fin.credits.is_conserved(),
            "credit leak: consumed {} returned {}",
            fin.credits.consumed, fin.credits.returned
        );
    }

    /// The same delivery-set law holds for the VC engine: a 2-VC
    /// dateline ring delivers every scripted packet at depth 1–4 with
    /// delayed credits, exactly as with unbounded FIFOs.
    #[test]
    fn vc_finite_fifos_deliver_the_infinite_depth_set(
        pkts in prop::collection::vec((0u64..30, 0usize..6, 0usize..6), 1..16),
        depth in 1u32..5,
        delay in 0u64..4,
    ) {
        let ring = Ring::new(6, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 2);
        let script: Vec<(u64, usize, usize)> =
            pkts.into_iter().filter(|&(_, s, d)| s != d).collect();
        if script.is_empty() { return Ok(()); }
        let n = script.len();
        let run = |depth: u32, delay: u64| {
            let cfg = SimConfig {
                packet_flits: 8,
                max_cycles: 200_000,
                stall_threshold: 5_000,
                ..SimConfig::default()
            }
            .with_buffer_depth(depth)
            .with_credit_delay(delay);
            VcEngine::new(ring.net(), &routes, cfg).run(Workload::Scripted(script.clone()))
        };
        let inf = run(SimConfig::INFINITE_DEPTH, 0);
        let fin = run(depth, delay);
        prop_assert!(inf.deadlock.is_none(), "{:?}", inf.deadlock);
        prop_assert!(fin.deadlock.is_none(), "depth {} delay {}: {:?}", depth, delay, fin.deadlock);
        prop_assert_eq!(inf.delivered, n);
        prop_assert_eq!(fin.delivered, n, "depth {} delay {}", depth, delay);
        prop_assert!(
            fin.credits.is_conserved(),
            "credit leak: consumed {} returned {}",
            fin.credits.consumed, fin.credits.returned
        );
    }
}
