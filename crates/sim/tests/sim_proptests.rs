//! Property tests for the wormhole engines: conservation laws and
//! timing bounds must hold for arbitrary workloads.

use fractanet_route::fractal::fractal_routes;
use fractanet_route::RouteSet;
use fractanet_sim::vc::{dateline_ring_routes, VcEngine};
use fractanet_sim::{Engine, SimConfig, Workload};
use fractanet_topo::{Fractahedron, Ring, Topology, Variant};
use proptest::prelude::*;

fn tetra() -> (Fractahedron, RouteSet) {
    let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
    let routes = fractal_routes(&f);
    let rs = RouteSet::from_table(f.net(), f.end_nodes(), &routes).unwrap();
    (f, rs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary scripted workloads on a deadlock-free system deliver
    /// everything, conserve flits exactly, and respect the zero-load
    /// latency floor.
    #[test]
    fn scripted_workloads_conserve_flits(
        pkts in prop::collection::vec((0u64..50, 0usize..8, 0usize..8), 1..25),
        flits in 2u32..12,
    ) {
        let (f, rs) = tetra();
        let script: Vec<(u64, usize, usize)> =
            pkts.into_iter().filter(|&(_, s, d)| s != d).collect();
        let n_pkts = script.len();
        let expected_flits: u64 = script
            .iter()
            .map(|&(_, s, d)| flits as u64 * rs.path(s, d).len() as u64)
            .sum();
        let floors: Vec<u64> = script
            .iter()
            .map(|&(_, s, d)| rs.path(s, d).len() as u64 + flits as u64)
            .collect();
        let cfg = SimConfig {
            packet_flits: flits,
            buffer_depth: 2,
            max_cycles: 200_000,
            stall_threshold: 5_000,
            ..SimConfig::default()
        };
        let res = Engine::new(f.net(), &rs, cfg).run(Workload::Scripted(script));
        prop_assert!(res.is_clean(), "{:?}", res.deadlock);
        prop_assert_eq!(res.delivered, n_pkts);
        prop_assert_eq!(res.channel_busy.iter().sum::<u64>(), expected_flits);
        if let Some(&floor) = floors.iter().min() {
            // The fastest packet cannot beat pipeline physics.
            prop_assert!(res.avg_latency >= floor as f64 || n_pkts == 0);
        }
    }

    /// The engine is a function of (routes, config, workload): same
    /// seed, same everything.
    #[test]
    fn engine_is_deterministic(seed in 0u64..10_000, rate in 0.05f64..0.5) {
        let (f, rs) = tetra();
        let mk = || {
            let cfg = SimConfig {
                packet_flits: 6,
                max_cycles: 3_000,
                stall_threshold: 1_500,
                seed,
                ..SimConfig::default()
            };
            Engine::new(f.net(), &rs, cfg).run(Workload::Bernoulli {
                injection_rate: rate,
                pattern: fractanet_sim::DstPattern::Uniform,
                until_cycle: 1_500,
            })
        };
        let (a, b) = (mk(), mk());
        prop_assert_eq!(a.generated, b.generated);
        prop_assert_eq!(a.delivered, b.delivered);
        prop_assert_eq!(a.channel_busy, b.channel_busy);
        prop_assert_eq!(a.avg_latency, b.avg_latency);
    }

    /// The 2-VC dateline ring never deadlocks, whatever the scripted
    /// burst looks like.
    #[test]
    fn vc_ring_never_deadlocks(
        pkts in prop::collection::vec((0u64..30, 0usize..6, 0usize..6), 1..20),
    ) {
        let ring = Ring::new(6, 1, 6).unwrap();
        let routes = dateline_ring_routes(&ring, 2);
        let script: Vec<(u64, usize, usize)> =
            pkts.into_iter().filter(|&(_, s, d)| s != d).collect();
        let n = script.len();
        let cfg = SimConfig {
            packet_flits: 8,
            buffer_depth: 2,
            max_cycles: 200_000,
            stall_threshold: 5_000,
            ..SimConfig::default()
        };
        let res = VcEngine::new(ring.net(), &routes, cfg).run(Workload::Scripted(script));
        prop_assert!(res.deadlock.is_none(), "{:?}", res.deadlock);
        prop_assert_eq!(res.delivered, n);
    }

    /// Throughput never exceeds offered load (open-loop conservation)
    /// and the simulator never invents packets.
    #[test]
    fn no_packet_creation_from_nothing(rate in 0.05f64..0.9, seed in 0u64..100) {
        let (f, rs) = tetra();
        let cfg = SimConfig {
            packet_flits: 8,
            max_cycles: 4_000,
            stall_threshold: 2_000,
            seed,
            ..SimConfig::default()
        };
        let res = Engine::new(f.net(), &rs, cfg).run(Workload::Bernoulli {
            injection_rate: rate,
            pattern: fractanet_sim::DstPattern::Uniform,
            until_cycle: 2_000,
        });
        prop_assert!(res.delivered <= res.generated);
        prop_assert!(res.deadlock.is_none());
        // Generated packets bounded by nodes x generation cycles.
        prop_assert!(res.generated <= 8 * 2_000);
    }
}
