//! Cost accounting: Table 2's "Routers" row, Fig 3's "Ports" column,
//! and §3.4's router-count comparison ("The cost of the contention
//! reduction is an increase in the number of routers from 28 to 48").

use fractanet_graph::{LinkClass, Network};

/// Hardware inventory of a network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostSummary {
    /// Packet switches.
    pub routers: usize,
    /// End nodes (CPUs / I/O adapters).
    pub end_nodes: usize,
    /// Cables by class: (attach, local, inter-level).
    pub attach_links: usize,
    /// Router↔router cables within a stage.
    pub local_links: usize,
    /// Router↔router cables between levels.
    pub level_links: usize,
    /// Router ports carrying a cable.
    pub ports_used: usize,
    /// Router ports total.
    pub ports_total: usize,
}

impl CostSummary {
    /// Tallies a network.
    pub fn of(net: &Network) -> Self {
        let mut attach = 0;
        let mut local = 0;
        let mut level = 0;
        for l in net.links() {
            match net.link(l).class {
                LinkClass::Attach => attach += 1,
                LinkClass::Local => local += 1,
                LinkClass::Level(_) => level += 1,
            }
        }
        let mut ports_used = 0;
        let mut ports_total = 0;
        for r in net.routers() {
            ports_total += net.kind(r).ports() as usize;
            ports_used += net.degree(r);
        }
        CostSummary {
            routers: net.router_count(),
            end_nodes: net.end_node_count(),
            attach_links: attach,
            local_links: local,
            level_links: level,
            ports_used,
            ports_total,
        }
    }

    /// All cables.
    pub fn total_links(&self) -> usize {
        self.attach_links + self.local_links + self.level_links
    }

    /// Fraction of router ports carrying a cable.
    pub fn port_occupancy(&self) -> f64 {
        if self.ports_total == 0 {
            0.0
        } else {
            self.ports_used as f64 / self.ports_total as f64
        }
    }

    /// A simple relative cost: routers plus cables weighted by
    /// `cable_cost` (routers normalized to 1.0). The paper trades
    /// routers for contention; this makes the trade scannable.
    pub fn relative_cost(&self, cable_cost: f64) -> f64 {
        self.routers as f64 + cable_cost * self.total_links() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_topo::{FatTree, Fractahedron, Topology};

    #[test]
    fn table2_router_counts() {
        // "an increase in the number of routers from 28 to 48."
        let ft = CostSummary::of(FatTree::paper_4_2_64().net());
        let ff = CostSummary::of(Fractahedron::paper_fat_64().net());
        assert_eq!(ft.routers, 28);
        assert_eq!(ff.routers, 48);
        assert_eq!(ft.end_nodes, 64);
        assert_eq!(ff.end_nodes, 64);
    }

    #[test]
    fn fractahedron_link_classes() {
        let f = Fractahedron::paper_fat_64();
        let c = CostSummary::of(f.net());
        assert_eq!(c.attach_links, 64);
        // 8 level-1 tetras x 6 edges + 4 level-2 layers x 6 edges.
        assert_eq!(c.local_links, 8 * 6 + 4 * 6);
        // 8 tetras x 4 up links.
        assert_eq!(c.level_links, 32);
        assert_eq!(c.total_links(), 64 + 72 + 32);
    }

    #[test]
    fn port_occupancy_bounds() {
        let f = Fractahedron::paper_fat_64();
        let c = CostSummary::of(f.net());
        assert!(c.port_occupancy() > 0.5 && c.port_occupancy() <= 1.0);
        // Degrees: level-1 routers use all 6 ports; level-2 use 2 down
        // + 3 intra + 0 up (top level reserved) = 5.
        assert_eq!(c.ports_used, 32 * 6 + 16 * 5);
    }

    #[test]
    fn relative_cost_monotone_in_cable_weight() {
        let c = CostSummary::of(Fractahedron::paper_fat_64().net());
        assert!(c.relative_cost(0.2) < c.relative_cost(0.5));
        assert_eq!(c.relative_cost(0.0), c.routers as f64);
    }
}
