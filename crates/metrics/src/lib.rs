//! # fractanet-metrics
//!
//! The analytical metrics the paper compares topologies by:
//!
//! * **Maximum link contention** ([`contention`]) — §3's figure of
//!   merit for load imbalance ("Initially, we just use the maximum
//!   link contention as a measure of the ability to handle load
//!   imbalance"): the largest set of simultaneous transfers, with
//!   pairwise-distinct sources and destinations, that a fixed routing
//!   forces through one link. Computed exactly, per channel, as a
//!   maximum bipartite matching.
//! * **Bisection bandwidth** ([`bisection`]) — §2's "total traffic
//!   that can flow between halves of the system when cut at its
//!   weakest point", computed as a min-cut (max-flow) over candidate
//!   balanced partitions.
//! * **Hop statistics** ([`hops`]) — maximum and average router hops,
//!   with full histograms (Tables 1 and 2).
//! * **Link utilization** ([`utilization`]) — routes per channel and
//!   their spread; quantifies §2's complaint that path disables "give
//!   uneven link utilization under uniform load".
//! * **Cost accounting** ([`cost`]) — router/cable/port counts
//!   (Table 2's "Routers" row, Fig 3's "Ports" column).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bisection;
pub mod contention;
pub mod cost;
pub mod hops;
pub mod utilization;

pub use bisection::{bisection_estimate, min_cut_links, BisectionReport};
pub use contention::{
    compare_contention, max_link_contention, max_link_contention_paths, ContentionComparison,
    ContentionReport,
};
pub use cost::CostSummary;
pub use hops::HopStats;
pub use utilization::UtilizationReport;
