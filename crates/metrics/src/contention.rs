//! Maximum link contention (§3.1/§3.3/§3.4).
//!
//! For each unidirectional channel, collect every `(source,
//! destination)` pair whose fixed route crosses it; the worst-case
//! simultaneous load is the maximum matching between sources and
//! destinations (a transfer occupies one source and one destination,
//! and the paper's scenarios — "simultaneous transfers from A1-F6,
//! A2-E6, A3-D6, A4-C6, and A5-B6" — are exactly matchings). The
//! metric is the maximum over channels, usually quoted as `k:1`.

use fractanet_graph::matching::Bipartite;
use fractanet_graph::{ChannelId, LinkClass, Network};
use fractanet_route::{Paths, RouteSet};

/// Worst-case contention of a routed network.
#[derive(Clone, Debug)]
pub struct ContentionReport {
    /// The maximum matching size over all channels (the `k` of `k:1`).
    pub worst: usize,
    /// A channel achieving it.
    pub worst_channel: ChannelId,
    /// Matching size per channel, indexed by `ChannelId::index()`.
    pub per_channel: Vec<usize>,
}

impl ContentionReport {
    /// Worst contention among channels of one link class (e.g. the
    /// Fig 3 numbers are quoted for inter-router links only).
    pub fn worst_in_class(&self, net: &Network, class: LinkClass) -> Option<(usize, ChannelId)> {
        self.per_channel
            .iter()
            .enumerate()
            .filter(|&(i, _)| net.link(ChannelId(i as u32).link()).class == class)
            .map(|(i, &c)| (c, ChannelId(i as u32)))
            .max_by_key(|&(c, ch)| (c, std::cmp::Reverse(ch.index())))
    }

    /// The example transfer set achieving `worst` on `worst_channel`
    /// can be recomputed with [`contention_of_channel`]; this helper
    /// formats the headline number the way the paper quotes it.
    pub fn ratio(&self) -> String {
        format!("{}:1", self.worst)
    }
}

/// Computes the contention report for a full route set.
///
/// ```
/// use fractanet_metrics::max_link_contention;
/// use fractanet_route::{direct, RouteSet};
/// use fractanet_topo::{FullyConnectedCluster, Topology};
///
/// let tetra = FullyConnectedCluster::tetrahedron();
/// let routes = direct::cluster_routes(&tetra);
/// let rs = RouteSet::from_table(tetra.net(), tetra.end_nodes(), &routes).unwrap();
/// // Fig 3: "at most three nodes may simultaneously attempt to use
/// // any one of the inter-router links."
/// assert_eq!(max_link_contention(tetra.net(), &rs).worst, 3);
/// ```
pub fn max_link_contention(net: &Network, routes: &RouteSet) -> ContentionReport {
    max_link_contention_paths(net, Paths::dense(routes))
}

/// [`max_link_contention`] over any per-pair path view (dense routes
/// or destination tables walked in place). Pairs whose table trace
/// fails contribute no flows.
pub fn max_link_contention_paths(net: &Network, paths: Paths<'_>) -> ContentionReport {
    let flows = collect_flows(net, paths);
    let n = paths.len();
    let mut per_channel = vec![0usize; net.channel_count()];
    let mut worst = 0usize;
    let mut worst_channel = ChannelId(0);
    for (idx, fl) in flows.iter().enumerate() {
        if fl.is_empty() {
            continue;
        }
        let m = matching_size(n, fl);
        per_channel[idx] = m;
        if m > worst {
            worst = m;
            worst_channel = ChannelId(idx as u32);
        }
    }
    ContentionReport {
        worst,
        worst_channel,
        per_channel,
    }
}

/// Contention of one channel plus a witness transfer set
/// (source, destination) realizing it.
pub fn contention_of_channel(
    net: &Network,
    routes: &RouteSet,
    ch: ChannelId,
) -> (usize, Vec<(usize, usize)>) {
    let _ = net;
    let mut fl = Vec::new();
    for (s, d, path) in routes.pairs() {
        if path.contains(&ch) {
            fl.push((s as u32, d as u32));
        }
    }
    let n = routes.len();
    let mut b = Bipartite::new(n, n);
    for &(s, d) in &fl {
        b.add_edge(s, d);
    }
    let pairs = b.max_matching_pairs();
    (
        pairs.len(),
        pairs
            .iter()
            .map(|&(s, d)| (s as usize, d as usize))
            .collect(),
    )
}

/// Contention for a *restricted* traffic pattern: only the listed
/// (source, destination) pairs may be active. Used for the paper's
/// adversarial scenarios (§3.4: "nodes 6, 7, 14, and 15 are all trying
/// to send to nodes 54, 55, 62, and 63").
pub fn pattern_contention(
    net: &Network,
    routes: &RouteSet,
    pattern: &[(usize, usize)],
) -> (usize, ChannelId) {
    let mut flows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); net.channel_count()];
    for &(s, d) in pattern {
        for &ch in routes.path(s, d) {
            flows[ch.index()].push((s as u32, d as u32));
        }
    }
    let n = routes.len();
    let mut worst = (0usize, ChannelId(0));
    for (idx, fl) in flows.iter().enumerate() {
        if fl.len() <= worst.0 {
            continue; // matching can't beat the flow count
        }
        let m = matching_size(n, fl);
        if m > worst.0 {
            worst = (m, ChannelId(idx as u32));
        }
    }
    worst
}

/// Analytical bound vs the peaks an instrumented simulation actually
/// observed (`fractanet-telemetry`'s per-channel `peak_contention`).
///
/// On a fault-free run over the same routes the empirical figure is a
/// matching of a *subset* of the pairs the analytical metric matched,
/// so every channel must satisfy `empirical ≤ analytical` — both sides
/// are computed by the same Hopcroft–Karp code. A violation means the
/// simulator routed a worm somewhere the tables say it cannot go.
#[derive(Clone, Debug)]
pub struct ContentionComparison {
    /// The analytical worst case (the `k` of `k:1`).
    pub worst_analytical: usize,
    /// The largest per-cycle matching any channel ever saw.
    pub worst_empirical: usize,
    /// Channels whose observed peak exceeded their analytical bound:
    /// `(channel, empirical, analytical)`. Empty on conforming runs.
    pub violations: Vec<(ChannelId, usize, usize)>,
}

impl ContentionComparison {
    /// True when no channel beat its analytical bound.
    pub fn within_bounds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks a telemetry run's per-channel contention peaks against the
/// analytical report for the same network and routes. `channels` is
/// `TelemetryReport::channels`, indexed by `ChannelId::index()` like
/// `ContentionReport::per_channel`.
pub fn compare_contention(
    analytical: &ContentionReport,
    channels: &[fractanet_telemetry::ChannelSummary],
) -> ContentionComparison {
    let mut worst_empirical = 0usize;
    let mut violations = Vec::new();
    for (idx, ch) in channels.iter().enumerate() {
        let emp = ch.peak_contention as usize;
        if emp > worst_empirical {
            worst_empirical = emp;
        }
        let bound = analytical.per_channel.get(idx).copied().unwrap_or(0);
        if emp > bound {
            violations.push((ChannelId(idx as u32), emp, bound));
        }
    }
    ContentionComparison {
        worst_analytical: analytical.worst,
        worst_empirical,
        violations,
    }
}

fn collect_flows(net: &Network, paths: Paths<'_>) -> Vec<Vec<(u32, u32)>> {
    let mut flows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); net.channel_count()];
    paths.for_each_pair(|s, d, res| {
        let Ok(path) = res else { return };
        for &ch in path {
            flows[ch.index()].push((s as u32, d as u32));
        }
    });
    flows
}

fn matching_size(n: usize, flows: &[(u32, u32)]) -> usize {
    let mut b = Bipartite::new(n, n);
    for &(s, d) in flows {
        b.add_edge(s, d);
    }
    b.max_matching()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_route::direct::cluster_routes;
    use fractanet_route::dor::mesh_xy_routes;
    use fractanet_route::fattree::{fattree_routes, UpPolicy};
    use fractanet_route::fractal::fractal_routes;
    use fractanet_topo::{FatTree, Fractahedron, FullyConnectedCluster, Mesh2D, Topology};

    #[test]
    fn fig3_cluster_contention_series() {
        // Fig 3: 2..6 fully-connected 6-port routers give 5:1, 4:1,
        // 3:1, 2:1, 1:1 on the inter-router links.
        for (m, want) in [(2usize, 5usize), (3, 4), (4, 3), (5, 2), (6, 1)] {
            let c = FullyConnectedCluster::new(m, 6).unwrap();
            let rs = RouteSet::from_table(c.net(), c.end_nodes(), &cluster_routes(&c)).unwrap();
            let rep = max_link_contention(c.net(), &rs);
            let (inter, _) = rep.worst_in_class(c.net(), LinkClass::Local).unwrap();
            assert_eq!(inter, want, "m = {m}");
            assert_eq!(c.predicted_contention(), Some(want));
        }
    }

    #[test]
    fn mesh_6x6_contention_is_10_to_1() {
        // §3.1: "a total of ten transfers may simultaneously try to
        // share the A6 links, giving a 10:1 contention ratio."
        let m = Mesh2D::new(6, 6, 2, 6).unwrap();
        let rs = RouteSet::from_table(m.net(), m.end_nodes(), &mesh_xy_routes(&m)).unwrap();
        let rep = max_link_contention(m.net(), &rs);
        assert_eq!(rep.worst, 10);
        assert_eq!(rep.ratio(), "10:1");
    }

    #[test]
    fn fat_tree_contention_is_12_to_1() {
        // §3.3: "All twelve transfers will contend for the single link
        // HLP, for a 12:1 contention ratio. Other static partitionings
        // … can do no better" — true for partitions that spread
        // destinations evenly (ByLeafRouter, ByNodeModulo).
        let ft = FatTree::paper_4_2_64();
        for policy in [UpPolicy::ByLeafRouter, UpPolicy::ByNodeModulo] {
            let rs = RouteSet::from_table(ft.net(), ft.end_nodes(), &fattree_routes(&ft, policy))
                .unwrap();
            let rep = max_link_contention(ft.net(), &rs);
            assert_eq!(rep.worst, 12, "{policy:?}");
        }
    }

    #[test]
    fn fat_tree_by_group_policy_is_worse() {
        // Ablation: partitioning by destination *group* funnels all 48
        // foreign transfers to a group through one top-level down link
        // — 16:1, strictly worse than the paper's 12:1 bound for
        // even partitions.
        let ft = FatTree::paper_4_2_64();
        let rs = RouteSet::from_table(
            ft.net(),
            ft.end_nodes(),
            &fattree_routes(&ft, UpPolicy::ByGroup),
        )
        .unwrap();
        assert_eq!(max_link_contention(ft.net(), &rs).worst, 16);
    }

    #[test]
    fn fat_fractahedron_contention() {
        // Table 2 quotes 4:1, attributing the worst case to "the links
        // within the second level tetrahedrons" — our intra-tetrahedron
        // (Local) channels reproduce exactly that. The exact
        // whole-network maximum is 8:1, on the level-2 → level-1 down
        // links (all 8 nodes of one destination tetrahedron reachable
        // from same-corner sources), a case §3.4's analysis does not
        // discuss. Either way the fractahedron beats the fat tree's
        // 12:1.
        let f = Fractahedron::paper_fat_64();
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &fractal_routes(&f)).unwrap();
        let rep = max_link_contention(f.net(), &rs);
        let (local_worst, _) = rep.worst_in_class(f.net(), LinkClass::Local).unwrap();
        assert_eq!(local_worst, 4, "paper's 4:1 on intra-tetrahedron links");
        assert_eq!(
            rep.worst, 8,
            "exact whole-network maximum sits on the down links"
        );
        assert_eq!(
            f.net().link(rep.worst_channel.link()).class,
            LinkClass::Level(1)
        );
    }

    #[test]
    fn paper_adversarial_pattern_on_fractahedron() {
        // §3.4: nodes 6,7,14,15 -> 54,55,62,63 all use one diagonal
        // link in one level-2 layer.
        let f = Fractahedron::paper_fat_64();
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &fractal_routes(&f)).unwrap();
        let pattern = [(6, 54), (7, 55), (14, 62), (15, 63)];
        let (worst, ch) = pattern_contention(f.net(), &rs, &pattern);
        assert_eq!(worst, 4);
        // The shared channel is an intra-tetrahedron (Local) link at
        // level 2.
        assert_eq!(f.net().link(ch.link()).class, LinkClass::Local);
        let pos = f.pos_of(f.net().channel_src(ch)).unwrap();
        assert_eq!(pos.level, 2);
    }

    #[test]
    fn paper_adversarial_pattern_on_fat_tree() {
        // §3.3: nodes 52-63 -> 36-47 share one top-level link.
        let ft = FatTree::paper_4_2_64();
        let rs = RouteSet::from_table(
            ft.net(),
            ft.end_nodes(),
            &fattree_routes(&ft, UpPolicy::ByGroup),
        )
        .unwrap();
        let pattern: Vec<(usize, usize)> = (52..64).zip(36..48).collect();
        let (worst, _) = pattern_contention(ft.net(), &rs, &pattern);
        assert_eq!(worst, 12);
    }

    #[test]
    fn compare_contention_flags_only_violations() {
        let m = Mesh2D::new(3, 3, 1, 6).unwrap();
        let rs = RouteSet::from_table(m.net(), m.end_nodes(), &mesh_xy_routes(&m)).unwrap();
        let rep = max_link_contention(m.net(), &rs);

        // Empirical peaks exactly at the bound everywhere: conforming.
        let mut chans =
            vec![fractanet_telemetry::ChannelSummary::default(); m.net().channel_count()];
        for (c, &bound) in chans.iter_mut().zip(&rep.per_channel) {
            c.peak_contention = bound as u32;
        }
        let cmp = compare_contention(&rep, &chans);
        assert!(cmp.within_bounds());
        assert_eq!(cmp.worst_analytical, rep.worst);
        assert_eq!(cmp.worst_empirical, rep.worst);

        // One channel one above its bound: exactly one violation.
        let idx = rep.worst_channel.index();
        chans[idx].peak_contention = (rep.per_channel[idx] + 1) as u32;
        let cmp = compare_contention(&rep, &chans);
        assert!(!cmp.within_bounds());
        assert_eq!(
            cmp.violations,
            vec![(
                rep.worst_channel,
                rep.per_channel[idx] + 1,
                rep.per_channel[idx]
            )]
        );
        assert_eq!(cmp.worst_empirical, rep.worst + 1);

        // An idle run (all peaks zero) trivially conforms.
        let idle = vec![fractanet_telemetry::ChannelSummary::default(); chans.len()];
        assert!(compare_contention(&rep, &idle).within_bounds());
    }

    #[test]
    fn channel_witness_is_valid() {
        let m = Mesh2D::new(3, 3, 1, 6).unwrap();
        let rs = RouteSet::from_table(m.net(), m.end_nodes(), &mesh_xy_routes(&m)).unwrap();
        let rep = max_link_contention(m.net(), &rs);
        let (k, witness) = contention_of_channel(m.net(), &rs, rep.worst_channel);
        assert_eq!(k, rep.worst);
        // Witness pairs must be pairwise distinct on both sides and
        // actually cross the channel.
        let mut ss: Vec<usize> = witness.iter().map(|p| p.0).collect();
        let mut ds: Vec<usize> = witness.iter().map(|p| p.1).collect();
        ss.sort_unstable();
        ds.sort_unstable();
        ss.dedup();
        ds.dedup();
        assert_eq!(ss.len(), k);
        assert_eq!(ds.len(), k);
        for &(s, d) in &witness {
            assert!(rs.path(s, d).contains(&rep.worst_channel));
        }
    }
}
