//! Bisection bandwidth as a min-cut (§2, Table 1).
//!
//! "Bandwidth in MPP systems is often measured in terms of bisection
//! bandwidth, the total traffic that can flow between halves of the
//! system when cut at its weakest point."
//!
//! We count **cables** crossing the cut (each cable carries one link of
//! bandwidth per direction, so duplex counting cancels out). The exact
//! min cut between two fixed node halves comes from max-flow; the
//! *bisection* minimizes over balanced halves, which is NP-hard in
//! general, so [`bisection_estimate`] evaluates a set of candidate
//! partitions (address-contiguous, interleaved, and random balanced
//! samples) and reports the weakest — an upper bound that is exact on
//! all of the paper's structured topologies, whose weakest cut is the
//! address-contiguous one.

use fractanet_graph::flow::FlowNetwork;
use fractanet_graph::{Network, NodeId};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of a bisection search.
#[derive(Clone, Debug)]
pub struct BisectionReport {
    /// Cables crossing the weakest cut found.
    pub links: u64,
    /// Name of the partition achieving it.
    pub partition: String,
    /// All candidate results, `(partition name, links)`.
    pub candidates: Vec<(String, u64)>,
}

/// Exact minimum number of cables whose removal separates node set `a`
/// from node set `b` (unit capacity per cable, via max-flow).
pub fn min_cut_links(net: &Network, a: &[NodeId], b: &[NodeId]) -> u64 {
    let mut f = FlowNetwork::new(net.node_count());
    for l in net.links() {
        let info = net.link(l);
        f.add_duplex(info.a.0 .0, info.b.0 .0, 1);
    }
    let srcs: Vec<u32> = a.iter().map(|n| n.0).collect();
    let snks: Vec<u32> = b.iter().map(|n| n.0).collect();
    f.max_flow_multi(&srcs, &snks)
}

/// Min-cut between the halves of one end-node bipartition.
fn cut_of_partition(net: &Network, ends: &[NodeId], half_a: &[usize]) -> u64 {
    let in_a: std::collections::HashSet<usize> = half_a.iter().copied().collect();
    let a: Vec<NodeId> = half_a.iter().map(|&i| ends[i]).collect();
    let b: Vec<NodeId> = (0..ends.len())
        .filter(|i| !in_a.contains(i))
        .map(|i| ends[i])
        .collect();
    min_cut_links(net, &a, &b)
}

/// Searches candidate balanced partitions for the weakest cut.
/// `random_trials` additional shuffled halves are evaluated with a
/// fixed-seed RNG so results are reproducible.
pub fn bisection_estimate(net: &Network, ends: &[NodeId], random_trials: usize) -> BisectionReport {
    assert!(ends.len() >= 2, "bisection needs at least two end nodes");
    let n = ends.len();
    let half = n / 2;
    let mut candidates: Vec<(String, Vec<usize>)> = Vec::new();
    candidates.push(("contiguous".into(), (0..half).collect()));
    candidates.push(("interleaved".into(), (0..n).step_by(2).take(half).collect()));
    // Blocked variants exercise mid-size structure (quarters 0+2 vs
    // 1+3).
    if n >= 8 {
        let q = n / 4;
        let mut blocked: Vec<usize> = (0..q).collect();
        blocked.extend(2 * q..3 * q);
        blocked.truncate(half);
        candidates.push(("alternate-quarters".into(), blocked));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0005_e4e7);
    for t in 0..random_trials {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        idx.truncate(half);
        candidates.push((format!("random-{t}"), idx));
    }

    let mut results = Vec::with_capacity(candidates.len());
    let mut best: Option<(u64, String)> = None;
    for (name, half_a) in candidates {
        let links = cut_of_partition(net, ends, &half_a);
        if best.as_ref().is_none_or(|(b, _)| links < *b) {
            best = Some((links, name.clone()));
        }
        results.push((name, links));
    }
    let (links, partition) = best.expect("at least one candidate");
    BisectionReport {
        links,
        partition,
        candidates: results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_topo::{
        BinaryTree, FatTree, Fractahedron, FullyConnectedCluster, Mesh2D, Ring, Topology, Variant,
    };

    #[test]
    fn ring_bisection_is_two() {
        let r = Ring::new(8, 1, 6).unwrap();
        let rep = bisection_estimate(r.net(), r.end_nodes(), 4);
        assert_eq!(rep.links, 2);
    }

    #[test]
    fn binary_tree_bisection_is_one() {
        // §3.3: "their bisection bandwidth is determined by the
        // bandwidth through the router at the root node."
        let t = BinaryTree::new(3, 2, 6).unwrap();
        let rep = bisection_estimate(t.net(), t.end_nodes(), 4);
        assert_eq!(rep.links, 1);
    }

    #[test]
    fn mesh_bisection_is_column_cut() {
        // 4x4 mesh: cutting between columns severs 4 links.
        let m = Mesh2D::new(4, 4, 1, 6).unwrap();
        // Column-contiguous ordering of ends is row-major, so the
        // contiguous half = bottom two rows: cut = 4 vertical links.
        let rep = bisection_estimate(m.net(), m.end_nodes(), 8);
        assert_eq!(rep.links, 4);
    }

    #[test]
    fn tetrahedron_bisection_is_four() {
        // Cutting a tetrahedron 2+2 severs 4 of its 6 edges.
        let c = FullyConnectedCluster::tetrahedron();
        let rep = bisection_estimate(c.net(), c.end_nodes(), 8);
        assert_eq!(rep.links, 4);
    }

    #[test]
    fn thin_fractahedron_bisection_is_always_four() {
        // Table 1: "Bisection BW ... 4 links" for every thin N.
        for n in 1..=3usize {
            let f = Fractahedron::new(n, Variant::Thin, false).unwrap();
            let rep = bisection_estimate(f.net(), f.end_nodes(), 4);
            assert_eq!(rep.links, 4, "thin N={n}");
        }
    }

    #[test]
    fn fat_fractahedron_bisection_grows() {
        // The recursive construction yields 4^N (Table 1's "4N" is an
        // OCR artifact of 4^N; N=1 matches thin's 4).
        for n in 1..=2usize {
            let f = Fractahedron::new(n, Variant::Fat, false).unwrap();
            let rep = bisection_estimate(f.net(), f.end_nodes(), 4);
            assert_eq!(rep.links, 4u64.pow(n as u32), "fat N={n}");
        }
    }

    #[test]
    fn fat_tree_4_2_bisection() {
        // The 28-router 4-2 fat tree: each 16-node group has 4 links
        // into the top level; a half = 2 groups = 8 links.
        let ft = FatTree::paper_4_2_64();
        let rep = bisection_estimate(ft.net(), ft.end_nodes(), 4);
        assert_eq!(rep.links, 8);
    }

    #[test]
    fn min_cut_between_explicit_sets() {
        let r = Ring::new(6, 1, 6).unwrap();
        let ends = r.end_nodes();
        // One node vs the rest: its attach link is the bottleneck.
        let cut = min_cut_links(r.net(), &[ends[0]], &ends[1..]);
        assert_eq!(cut, 1);
    }

    #[test]
    fn candidates_are_recorded() {
        let r = Ring::new(4, 1, 6).unwrap();
        let rep = bisection_estimate(r.net(), r.end_nodes(), 3);
        assert!(rep.candidates.len() >= 4);
        assert!(rep.candidates.iter().any(|(n, _)| n == &rep.partition));
        // The reported value is the minimum of all candidates.
        assert_eq!(
            rep.links,
            rep.candidates.iter().map(|&(_, l)| l).min().unwrap()
        );
    }
}
