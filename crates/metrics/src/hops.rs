//! Router-hop statistics (Tables 1 & 2).

use fractanet_graph::{bfs, Network, NodeId};
use fractanet_route::{Paths, RouteSet, Routes};

/// Hop statistics of a network or a routed network.
#[derive(Clone, Debug, PartialEq)]
pub struct HopStats {
    /// Largest router-hop count over all ordered end-node pairs.
    pub max: usize,
    /// Mean router-hop count.
    pub avg: f64,
    /// `histogram[h]` = number of ordered pairs at exactly `h` hops.
    pub histogram: Vec<usize>,
}

impl HopStats {
    /// Topological (shortest-path) statistics via BFS.
    pub fn topological(net: &Network) -> Option<Self> {
        let ends: Vec<_> = net.end_nodes().collect();
        if ends.len() < 2 {
            return None;
        }
        let mut histogram = Vec::new();
        let mut total = 0usize;
        let mut pairs = 0usize;
        for &s in &ends {
            let dist = bfs::distances(net, s);
            for &t in &ends {
                if t == s {
                    continue;
                }
                let d = dist[t.index()];
                if d == u32::MAX {
                    return None;
                }
                let hops = (d - 1) as usize;
                if histogram.len() <= hops {
                    histogram.resize(hops + 1, 0);
                }
                histogram[hops] += 1;
                total += hops;
                pairs += 1;
            }
        }
        Some(HopStats {
            max: histogram.len() - 1,
            avg: total as f64 / pairs as f64,
            histogram,
        })
    }

    /// Statistics of the *routed* paths (equals topological for
    /// minimal routings; larger for restricted ones like up*/down*).
    pub fn routed(routes: &RouteSet) -> Option<Self> {
        Self::routed_paths(Paths::dense(routes))
    }

    /// [`HopStats::routed`] over destination tables directly, walking
    /// the table per pair instead of materializing a path matrix.
    pub fn routed_tables(net: &Network, ends: &[NodeId], routes: &Routes) -> Option<Self> {
        Self::routed_paths(Paths::tables(net, ends, routes))
    }

    /// [`HopStats::routed`] over any per-pair path view. `None` when
    /// fewer than two end nodes or any pair is unrouted.
    pub fn routed_paths(paths: Paths<'_>) -> Option<Self> {
        if paths.len() < 2 {
            return None;
        }
        let mut histogram = Vec::new();
        let mut total = 0usize;
        let mut pairs = 0usize;
        let mut unrouted = false;
        paths.for_each_pair(|_, _, res| {
            let hops = match res {
                Ok(p) if !p.is_empty() => p.len() - 1,
                _ => {
                    unrouted = true;
                    return;
                }
            };
            if histogram.len() <= hops {
                histogram.resize(hops + 1, 0);
            }
            histogram[hops] += 1;
            total += hops;
            pairs += 1;
        });
        if unrouted {
            return None;
        }
        Some(HopStats {
            max: histogram.len() - 1,
            avg: total as f64 / pairs as f64,
            histogram,
        })
    }

    /// How many extra hops routing adds over shortest paths, summed
    /// over pairs (0 for minimal routings).
    pub fn stretch(net: &Network, routes: &RouteSet) -> Option<usize> {
        let topo = Self::topological(net)?;
        let routed = Self::routed(routes)?;
        let t: usize = topo.histogram.iter().enumerate().map(|(h, &c)| h * c).sum();
        let r: usize = routed
            .histogram
            .iter()
            .enumerate()
            .map(|(h, &c)| h * c)
            .sum();
        Some(r - t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_route::fractal::fractal_routes;
    use fractanet_route::treeroute::updown_routeset;
    use fractanet_topo::{Fractahedron, Hypercube, Topology};

    #[test]
    fn topological_matches_bfs_helpers() {
        let f = Fractahedron::paper_fat_64();
        let s = HopStats::topological(f.net()).unwrap();
        assert_eq!(s.max as u32, bfs::max_router_hops(f.net()).unwrap());
        assert!((s.avg - bfs::avg_router_hops(f.net()).unwrap()).abs() < 1e-12);
        assert_eq!(s.histogram.iter().sum::<usize>(), 64 * 63);
    }

    #[test]
    fn routed_equals_topological_for_minimal_routing() {
        let f = Fractahedron::paper_fat_64();
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &fractal_routes(&f)).unwrap();
        assert_eq!(HopStats::routed(&rs), HopStats::topological(f.net()));
        assert_eq!(HopStats::stretch(f.net(), &rs), Some(0));
    }

    #[test]
    fn updown_has_nonnegative_stretch() {
        let h = Hypercube::new(3, 1, 6).unwrap();
        let rs = updown_routeset(h.net(), h.end_nodes(), h.router(0));
        let stretch = HopStats::stretch(h.net(), &rs).unwrap();
        // up*/down* may detour; it can never be shorter than BFS.
        let routed = HopStats::routed(&rs).unwrap();
        let topo = HopStats::topological(h.net()).unwrap();
        assert!(routed.avg >= topo.avg - 1e-12);
        let _ = stretch;
    }

    #[test]
    fn histogram_shape_for_fat_64() {
        // Table 2 derivation: 1 pair/src at 1 hop, 6 at 2, and the
        // inter-tetra remainder between 3 and 5.
        let f = Fractahedron::paper_fat_64();
        let s = HopStats::topological(f.net()).unwrap();
        assert_eq!(s.histogram[1], 64);
        assert_eq!(s.histogram[2], 64 * 6);
        assert_eq!(s.max, 5);
    }
}
