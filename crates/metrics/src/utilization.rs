//! Link-utilization spread under uniform all-pairs traffic.
//!
//! §2's case against naive path disables: "most arrangements of path
//! disables give uneven link utilization under uniform load … the
//! upper links are lightly utilized … while the bottom links are more
//! heavily used". We quantify that by counting routes per channel and
//! summarizing the spread.

use fractanet_graph::{ChannelId, LinkClass, Network};
use fractanet_route::{Paths, RouteSet};

/// Routes-per-channel summary for one link class (or all).
#[derive(Clone, Debug)]
pub struct UtilizationReport {
    /// Routes crossing each channel, indexed by `ChannelId::index()`.
    pub per_channel: Vec<usize>,
    /// Least-loaded considered channel.
    pub min: usize,
    /// Most-loaded considered channel.
    pub max: usize,
    /// Mean load over considered channels.
    pub mean: f64,
    /// Coefficient of variation (σ/μ) — 0 for perfectly even load.
    pub cv: f64,
    /// Channels considered (those matching the class filter).
    pub considered: Vec<ChannelId>,
}

impl UtilizationReport {
    /// Max/min imbalance ratio (∞-free: `max` as multiple of `min`,
    /// `None` when some considered channel is unused).
    pub fn imbalance(&self) -> Option<f64> {
        (self.min > 0).then(|| self.max as f64 / self.min as f64)
    }
}

/// Computes utilization over channels of `class` (or every channel
/// when `class` is `None`).
pub fn utilization(
    net: &Network,
    routes: &RouteSet,
    class: Option<LinkClass>,
) -> UtilizationReport {
    utilization_paths(net, Paths::dense(routes), class)
}

/// [`utilization`] over any per-pair path view (dense routes or
/// destination tables walked in place). Pairs whose table trace fails
/// contribute no load.
pub fn utilization_paths(
    net: &Network,
    paths: Paths<'_>,
    class: Option<LinkClass>,
) -> UtilizationReport {
    let mut per_channel = vec![0usize; net.channel_count()];
    paths.for_each_pair(|_, _, res| {
        let Ok(path) = res else { return };
        for &ch in path {
            per_channel[ch.index()] += 1;
        }
    });
    let considered: Vec<ChannelId> = net
        .channels()
        .filter(|&ch| class.is_none_or(|c| net.link(ch.link()).class == c))
        .collect();
    assert!(!considered.is_empty(), "no channels match the class filter");
    let loads: Vec<usize> = considered
        .iter()
        .map(|ch| per_channel[ch.index()])
        .collect();
    let min = *loads.iter().min().unwrap();
    let max = *loads.iter().max().unwrap();
    let mean = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
    let var = loads
        .iter()
        .map(|&l| (l as f64 - mean).powi(2))
        .sum::<f64>()
        / loads.len() as f64;
    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    UtilizationReport {
        per_channel,
        min,
        max,
        mean,
        cv,
        considered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_route::dor::ecube_routes;
    use fractanet_route::treeroute::updown_routeset;
    use fractanet_route::RouteSet;
    use fractanet_topo::{Hypercube, Topology};

    #[test]
    fn ecube_on_cube_is_perfectly_even() {
        // Symmetric topology + symmetric routing: every inter-router
        // channel carries the same load.
        let h = Hypercube::new(3, 1, 6).unwrap();
        let rs = RouteSet::from_table(h.net(), h.end_nodes(), &ecube_routes(&h)).unwrap();
        let rep = utilization(h.net(), &rs, Some(LinkClass::Local));
        assert_eq!(rep.min, rep.max, "e-cube should be perfectly even");
        assert!(rep.cv < 1e-12);
        assert_eq!(rep.imbalance(), Some(1.0));
    }

    #[test]
    fn updown_is_uneven() {
        // The paper's complaint: root-adjacent links are hot, far links
        // are cold.
        let h = Hypercube::new(3, 1, 6).unwrap();
        let rs = updown_routeset(h.net(), h.end_nodes(), h.router(0));
        let rep = utilization(h.net(), &rs, Some(LinkClass::Local));
        assert!(rep.max > rep.min, "up*/down* must skew the load");
        assert!(rep.cv > 0.2, "cv = {}", rep.cv);
    }

    #[test]
    fn attach_channels_carry_exactly_n_minus_1() {
        // Every end node sources n-1 routes and sinks n-1 routes.
        let h = Hypercube::new(2, 1, 6).unwrap();
        let rs = RouteSet::from_table(h.net(), h.end_nodes(), &ecube_routes(&h)).unwrap();
        let rep = utilization(h.net(), &rs, Some(LinkClass::Attach));
        assert_eq!(rep.min, 3);
        assert_eq!(rep.max, 3);
    }

    #[test]
    fn all_channel_filter_includes_everything() {
        let h = Hypercube::new(2, 1, 6).unwrap();
        let rs = RouteSet::from_table(h.net(), h.end_nodes(), &ecube_routes(&h)).unwrap();
        let rep = utilization(h.net(), &rs, None);
        assert_eq!(rep.considered.len(), h.net().channel_count());
    }
}
