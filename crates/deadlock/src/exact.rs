//! Exact deadlock analysis: a decision procedure for the existence of
//! deadlock-free routing, and provably minimal turn-disable synthesis.
//!
//! The Dally & Seitz theorem reduces deadlock freedom of a routing to
//! acyclicity of its channel dependency graph. This module answers the
//! *existence* question underneath it — given the network and the set
//! of end nodes that must communicate, does **any** deadlock-free
//! routing exist? — and constructs one when it does, following the
//! necessary-and-sufficient condition of Mendlovic & Matias
//! (arXiv:2503.04583): a deadlock-free routing exists iff the turn
//! graph (channels as vertices, permitted channel-to-channel turns as
//! edges) admits an **acyclic subgraph that preserves the required
//! connectivity**. Equivalently, iff there is a total order on
//! channels under which every required pair has a strictly-increasing
//! path; that order is exactly the machine-checkable certificate this
//! module emits.
//!
//! On ServerNet-style networks every cable is full-duplex (each link
//! is a channel pair), so the condition specializes cleanly: a
//! deadlock-free routing exists **iff every required pair is connected
//! in the surviving graph** — sufficiency is constructive (an
//! up*/down*-style order always exists on a connected component), and
//! necessity is trivial (a severed pair admits no routing at all).
//! Both branches of [`Decision`] therefore carry replayable evidence:
//!
//! * [`Witness`] — a concrete routing plus a channel rank vector; the
//!   replay check walks every path and verifies ranks strictly
//!   increase, which forces the CDG acyclic without trusting any part
//!   of the synthesis.
//! * [`Obstruction`] — the severed pairs with the surviving-component
//!   labelling that proves them severed; the replay check recomputes
//!   connectivity from scratch.
//!
//! The synthesis itself ([`synthesize_disables_exact`]) replaces the
//! first-routable-turn loop of
//! [`synthesize_disables`](crate::disables::synthesize_disables) with
//! a lazy exact loop: route every pair by shortest allowed path,
//! enumerate the elementary cycles of the resulting CDG, solve a
//! branch-and-bound **minimum hitting set over the enumerated cycle
//! space** (seeded with the greedy result as upper bound and pruned by
//! a disjoint-cycle packing bound), disable exactly that set, and
//! repeat until the CDG is acyclic. `proven_minimal` is scoped
//! precisely: the disable count equals the proven minimum hitting set
//! of every cycle the enumeration surfaced — and is never claimed when
//! the enumeration was truncated or the node budget ran out, in which
//! case the solver falls back to the greedy synthesis and reports the
//! gap instead.

use crate::cdg::ChannelDependencyGraph;
use crate::disables::{route_one_masked, DisableSet, SynthesisError};
use fractanet_graph::hitting::{greedy_hitting_set, min_hitting_set};
use fractanet_graph::json::{JsonArray, JsonObject};
use fractanet_graph::{ChannelId, Network, NodeId};
use fractanet_route::{DeadMask, RouteSet};
use std::collections::VecDeque;

/// Component label for masked-out (dead) nodes.
const DEAD: u32 = u32::MAX;

/// How many example pairs an obstruction records before switching to a
/// count.
const SAMPLE: usize = 8;

/// Budgets for the exact analysis. The defaults are sized so every
/// paper topology decides in well under a second; raise them for
/// larger or denser networks.
#[derive(Clone, Debug)]
pub struct ExactConfig {
    /// Elementary cycles enumerated per synthesis round.
    pub max_cycles: usize,
    /// DFS step cap for each enumeration.
    pub max_cycle_steps: usize,
    /// Branch-and-bound node budget per hitting-set solve; exceeding
    /// it degrades to greedy quality and clears `proven_minimal`.
    pub bb_node_budget: usize,
    /// Re-route / enumerate / solve rounds before falling back to the
    /// greedy synthesis.
    pub max_rounds: usize,
    /// Iteration cap handed to the greedy fallback synthesis.
    pub greedy_iterations: usize,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_cycles: 64,
            max_cycle_steps: 200_000,
            bb_node_budget: 200_000,
            max_rounds: 32,
            greedy_iterations: 400,
        }
    }
}

/// The decision: either a replayable witness routing or a replayable
/// proof that no routing (deadlock-free or otherwise) exists.
#[derive(Clone, Debug)]
pub enum Decision {
    /// A deadlock-free routing exists; here is one, certified.
    Free(Box<ExactSynthesis>),
    /// No routing exists at all: some required pair is physically
    /// unreachable, which the obstruction proves.
    NoRouting(Box<Obstruction>),
}

/// A witness routing with its acyclicity certificate.
#[derive(Clone, Debug)]
pub struct Witness {
    /// One path per ordered pair (empty for pairs the caller accepts
    /// as severed — the full-decision entry point accepts none).
    pub routes: RouteSet,
    /// The turns the routing forswears.
    pub disables: DisableSet,
    /// `rank[ch.index()]`: a total order on channels. Every path's
    /// channel sequence strictly increases in rank, which is the
    /// certificate that the CDG is acyclic.
    pub rank: Vec<u32>,
}

impl Witness {
    /// Re-verifies the certificate from scratch: every non-empty path
    /// starts at its source end node, ends at its destination, is
    /// channel-consecutive through router interiors, takes no U-turn
    /// and no disabled turn, and climbs strictly in `rank` — which
    /// forces the channel dependency graph acyclic without trusting
    /// the synthesis. Returns the number of covered (non-empty) pairs.
    pub fn replay(&self, net: &Network, ends: &[NodeId]) -> Result<usize, String> {
        if self.rank.len() != net.channel_count() {
            return Err(format!(
                "rank vector covers {} channels, network has {}",
                self.rank.len(),
                net.channel_count()
            ));
        }
        let mut covered = 0usize;
        for (s, d, p) in self.routes.pairs() {
            if p.is_empty() {
                continue;
            }
            covered += 1;
            if net.channel_src(p[0]) != ends[s] {
                return Err(format!("pair ({s},{d}): path does not start at source"));
            }
            if net.channel_dst(*p.last().expect("non-empty")) != ends[d] {
                return Err(format!("pair ({s},{d}): path does not end at destination"));
            }
            for w in p.windows(2) {
                let (a, b) = (w[0], w[1]);
                if net.channel_dst(a) != net.channel_src(b) {
                    return Err(format!("pair ({s},{d}): discontinuous at {a:?}->{b:?}"));
                }
                if !net.is_router(net.channel_dst(a)) {
                    return Err(format!("pair ({s},{d}): routes through an end node"));
                }
                if b == a.reverse() {
                    return Err(format!("pair ({s},{d}): U-turn at {a:?}"));
                }
                if self.disables.contains(a, b) {
                    return Err(format!("pair ({s},{d}): takes disabled turn {a:?}->{b:?}"));
                }
                if self.rank[a.index()] >= self.rank[b.index()] {
                    return Err(format!(
                        "pair ({s},{d}): rank does not increase over {a:?}->{b:?}"
                    ));
                }
            }
        }
        Ok(covered)
    }
}

/// The outcome of [`synthesize_disables_exact`]: a certified witness
/// routing plus the exactness accounting the lint layer reports.
#[derive(Clone, Debug)]
pub struct ExactSynthesis {
    /// The routing and its certificate.
    pub witness: Witness,
    /// Ordered pairs with a (non-empty) route.
    pub connected_pairs: usize,
    /// All ordered pairs.
    pub total_pairs: usize,
    /// Size of the greedy synthesis' disable set, for gap reporting
    /// (`usize::MAX` when the greedy synthesis itself failed).
    pub greedy_size: usize,
    /// Proven lower bound on any set hitting the enumerated cycles.
    pub lower_bound: usize,
    /// Distinct elementary cycles the synthesis enumerated (the space
    /// the minimality claim quantifies over).
    pub cycles_seen: usize,
    /// Whether the disable count is the proven minimum hitting set of
    /// the enumerated cycle space (branch and bound exhausted, cycle
    /// enumeration untruncated, no greedy fallback).
    pub proven_minimal: bool,
    /// Whether any cycle enumeration hit its cap — when true,
    /// minimality is never claimed.
    pub truncated: bool,
    /// Branch-and-bound nodes expanded across all rounds.
    pub bb_nodes: usize,
    /// Synthesis rounds used.
    pub rounds: usize,
}

impl ExactSynthesis {
    /// Number of turns disabled.
    pub fn disables(&self) -> usize {
        self.witness.disables.len()
    }

    /// The certificate as one JSON object — disables, channel ranks,
    /// coverage, and the exactness accounting — replayable by any
    /// consumer that can walk the network.
    pub fn certificate_json(&self) -> String {
        let mut disables: Vec<(u32, u32)> = self
            .witness
            .disables
            .iter()
            .map(|(a, b)| (a.0, b.0))
            .collect();
        disables.sort_unstable();
        let mut darr = JsonArray::new();
        for (a, b) in disables {
            darr.push_raw(&format!("[{a},{b}]"));
        }
        let mut rarr = JsonArray::new();
        for &r in &self.witness.rank {
            rarr.push_num(r);
        }
        JsonObject::new()
            .field_raw("disables", &darr.build())
            .field_raw("rank", &rarr.build())
            .field_num("covered_pairs", self.connected_pairs)
            .field_num("total_pairs", self.total_pairs)
            .field_bool("proven_minimal", self.proven_minimal)
            .field_num("lower_bound", self.lower_bound)
            .field_num("cycles", self.cycles_seen)
            .field_bool("truncated", self.truncated)
            .build()
    }
}

/// Proof that no routing exists for some required pair.
#[derive(Clone, Debug)]
pub struct Obstruction {
    /// Sample of unreachable ordered pairs (at most [`SAMPLE`]).
    pub pairs: Vec<(usize, usize)>,
    /// Total unreachable ordered pairs.
    pub affected: usize,
    /// Surviving-component label per end address (`u32::MAX` = the end
    /// node itself is dead) — the evidence: each listed pair's labels
    /// differ.
    pub end_components: Vec<u32>,
}

impl Obstruction {
    /// Re-proves the obstruction from scratch: recomputes surviving
    /// connectivity and checks that every recorded pair is genuinely
    /// unreachable and the total count matches.
    pub fn replay(
        &self,
        net: &Network,
        ends: &[NodeId],
        mask: Option<&DeadMask>,
    ) -> Result<(), String> {
        let comp = components(net, mask);
        let labels: Vec<u32> = ends.iter().map(|&e| comp[e.index()]).collect();
        if labels != self.end_components {
            return Err("recorded component labels do not match the network".into());
        }
        let mut affected = 0usize;
        for s in 0..ends.len() {
            for d in 0..ends.len() {
                if s != d && (labels[s] == DEAD || labels[d] == DEAD || labels[s] != labels[d]) {
                    affected += 1;
                }
            }
        }
        if affected != self.affected {
            return Err(format!(
                "recorded {} unreachable pairs, recount found {affected}",
                self.affected
            ));
        }
        for &(s, d) in &self.pairs {
            if labels[s] != DEAD && labels[s] == labels[d] {
                return Err(format!("pair ({s},{d}) is reachable after all"));
            }
        }
        Ok(())
    }
}

/// Surviving-component label per node (BFS over live channels in node
/// order, so labels are deterministic). Masked-out nodes get [`DEAD`].
fn components(net: &Network, mask: Option<&DeadMask>) -> Vec<u32> {
    let node_ok = |v: NodeId| mask.is_none_or(|m| m.node_ok(v));
    let ch_ok = |ch: ChannelId| mask.is_none_or(|m| m.channel_ok(net, ch));
    let mut comp = vec![DEAD; net.node_count()];
    let mut next = 0u32;
    for root in net.nodes() {
        if comp[root.index()] != DEAD || !node_ok(root) {
            continue;
        }
        comp[root.index()] = next;
        let mut q = VecDeque::from([root]);
        while let Some(v) = q.pop_front() {
            for &(ch, w) in net.channels_from(v) {
                if ch_ok(ch) && node_ok(w) && comp[w.index()] == DEAD {
                    comp[w.index()] = next;
                    q.push_back(w);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Routes every pair that is connected in the surviving network;
/// severed pairs get empty paths. `Err((s, d))` names a pair that is
/// connected yet unroutable under the disables — a genuine synthesis
/// failure, never mere fault degradation.
fn route_all_components(
    net: &Network,
    ends: &[NodeId],
    disables: &DisableSet,
    mask: Option<&DeadMask>,
    comp: &[u32],
) -> Result<(RouteSet, usize), (usize, usize)> {
    let n = ends.len();
    let mut failed = None;
    let mut covered = 0usize;
    let rs = RouteSet::from_pairs(n, |s, d| {
        let (cs, cd) = (comp[ends[s].index()], comp[ends[d].index()]);
        if cs == DEAD || cd == DEAD || cs != cd {
            return Vec::new();
        }
        match route_one_masked(net, ends, disables, mask, s, d) {
            Some(p) => {
                covered += 1;
                p
            }
            None => {
                failed.get_or_insert((s, d));
                Vec::new()
            }
        }
    });
    match failed {
        Some(pair) => Err(pair),
        None => Ok((rs, covered)),
    }
}

/// The turn (edge) sets of each cycle, for hitting-set solving.
fn cycle_turn_sets(cycles: &[Vec<u32>]) -> Vec<Vec<(u32, u32)>> {
    cycles
        .iter()
        .map(|c| (0..c.len()).map(|i| (c[i], c[(i + 1) % c.len()])).collect())
        .collect()
}

/// The exact counterpart of the linter's greedy turn hitting set: the
/// provably minimum set of turns touching every enumerated cycle, by
/// branch and bound within `bb_node_budget` nodes.
#[derive(Clone, Debug)]
pub struct CycleDisables {
    /// The chosen turns (CDG edges `held -> wanted`), sorted.
    pub turns: Vec<(u32, u32)>,
    /// Size of the greedy hitting set over the same cycles.
    pub greedy_size: usize,
    /// Proven lower bound (disjoint-cycle packing).
    pub lower_bound: usize,
    /// Whether `turns.len()` is the proven minimum over these cycles.
    pub proven_minimal: bool,
    /// Branch-and-bound nodes expanded.
    pub bb_nodes: usize,
}

/// Solves the minimum turn-disable problem over an enumerated cycle
/// list exactly. Minimality is a statement about the given cycles
/// only; callers must not claim it when their enumeration was
/// truncated.
pub fn min_cycle_disables(cycles: &[Vec<u32>], bb_node_budget: usize) -> CycleDisables {
    let sets = cycle_turn_sets(cycles);
    let greedy = greedy_hitting_set(&sets);
    let sol = min_hitting_set(&sets, bb_node_budget);
    CycleDisables {
        turns: sol.chosen,
        greedy_size: greedy.len(),
        lower_bound: sol.lower_bound,
        proven_minimal: sol.proven_minimal,
        bb_nodes: sol.nodes_explored,
    }
}

/// Greedy synthesis (the Fig 2 loop), masked and component-aware:
/// severed pairs stay severed, everything else must route. Used as the
/// exact loop's fallback and as the gap-reporting baseline.
fn synthesize_greedy_masked(
    net: &Network,
    ends: &[NodeId],
    mask: Option<&DeadMask>,
    comp: &[u32],
    max_iterations: usize,
) -> Result<(DisableSet, RouteSet, usize), SynthesisError> {
    let mut disables = DisableSet::new();
    let (mut routes, mut covered) = route_all_components(net, ends, &disables, mask, comp)
        .map_err(|(src, dst)| SynthesisError::Unroutable { src, dst })?;
    for _ in 0..max_iterations {
        let cdg = ChannelDependencyGraph::from_routes(net, &routes);
        let Some(cycle) = cdg.find_cycle() else {
            return Ok((disables, routes, covered));
        };
        let mut advanced = false;
        for i in 0..cycle.len() {
            let a = cycle[i];
            let b = cycle[(i + 1) % cycle.len()];
            let mut candidate = disables.clone();
            candidate.insert(a, b);
            if let Ok((rs, cov)) = route_all_components(net, ends, &candidate, mask, comp) {
                disables = candidate;
                routes = rs;
                covered = cov;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return Err(SynthesisError::DidNotConverge {
                disables: disables.len(),
            });
        }
    }
    let cdg = ChannelDependencyGraph::from_routes(net, &routes);
    if cdg.find_cycle().is_none() {
        return Ok((disables, routes, covered));
    }
    Err(SynthesisError::DidNotConverge {
        disables: disables.len(),
    })
}

/// Builds the rank certificate for a routing whose CDG is acyclic: a
/// topological order of the CDG, one rank per channel.
fn rank_certificate(net: &Network, routes: &RouteSet) -> Option<Vec<u32>> {
    let cdg = ChannelDependencyGraph::from_routes(net, routes);
    let order = cdg.graph().topo_sort()?;
    let mut rank = vec![0u32; net.channel_count()];
    for (pos, &v) in order.iter().enumerate() {
        rank[v as usize] = pos as u32;
    }
    Some(rank)
}

/// Certificate-producing route synthesis with an exact minimum
/// turn-disable core. See the module docs for the algorithm and the
/// precise scope of `proven_minimal`.
///
/// Severed pairs (under `mask`) are left unrouted; every pair that is
/// connected in the surviving network gets a path. Falls back to the
/// greedy Fig 2 synthesis — with the gap recorded — when a budget is
/// exceeded or the exact solution would disconnect a pair.
pub fn synthesize_disables_exact(
    net: &Network,
    ends: &[NodeId],
    mask: Option<&DeadMask>,
    cfg: &ExactConfig,
) -> Result<ExactSynthesis, SynthesisError> {
    let comp = components(net, mask);
    let n = ends.len();
    let total_pairs = n * n.saturating_sub(1);

    let finalize = |disables: DisableSet,
                    routes: RouteSet,
                    covered: usize,
                    greedy_size: usize,
                    lower_bound: usize,
                    cycles_seen: usize,
                    proven: bool,
                    truncated: bool,
                    bb_nodes: usize,
                    rounds: usize|
     -> Result<ExactSynthesis, SynthesisError> {
        let rank = rank_certificate(net, &routes).ok_or(SynthesisError::DidNotConverge {
            disables: disables.len(),
        })?;
        Ok(ExactSynthesis {
            witness: Witness {
                routes,
                disables,
                rank,
            },
            connected_pairs: covered,
            total_pairs,
            greedy_size,
            lower_bound,
            cycles_seen,
            proven_minimal: proven,
            truncated,
            bb_nodes,
            rounds,
        })
    };

    let mut pool: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut chosen = DisableSet::new();
    let mut truncated = false;
    let mut lower_bound = 0usize;
    let mut bb_nodes = 0usize;
    let mut proven = true;
    let mut fell_back = false;

    for round in 0..cfg.max_rounds {
        let (routes, covered) = route_all_components(net, ends, &chosen, mask, &comp)
            .map_err(|(src, dst)| SynthesisError::Unroutable { src, dst })?;
        let cdg = ChannelDependencyGraph::from_routes(net, &routes);
        if cdg.find_cycle().is_none() {
            // Greedy baseline for the gap report; when zero disables
            // sufficed the baseline is trivially zero too.
            let greedy_size = if chosen.is_empty() {
                0
            } else {
                synthesize_greedy_masked(net, ends, mask, &comp, cfg.greedy_iterations)
                    .map(|(d, _, _)| d.len())
                    .unwrap_or(usize::MAX)
            };
            return finalize(
                chosen,
                routes,
                covered,
                greedy_size,
                lower_bound,
                pool.len(),
                proven && !truncated,
                truncated,
                bb_nodes,
                round,
            );
        }
        let (cycles, trunc) = cdg
            .graph()
            .elementary_cycles(cfg.max_cycles, cfg.max_cycle_steps);
        truncated |= trunc;
        let mut grew = false;
        for set in cycle_turn_sets(&cycles) {
            if !pool.contains(&set) {
                pool.push(set);
                grew = true;
            }
        }
        if !grew {
            // The (truncated) enumeration shows nothing new to hit —
            // the exact loop cannot make progress.
            fell_back = true;
            break;
        }
        let sol = min_hitting_set(&pool, cfg.bb_node_budget);
        bb_nodes += sol.nodes_explored;
        lower_bound = lower_bound.max(sol.lower_bound);
        proven &= sol.proven_minimal;
        let mut candidate = DisableSet::new();
        for &(a, b) in &sol.chosen {
            candidate.insert(ChannelId(a), ChannelId(b));
        }
        if route_all_components(net, ends, &candidate, mask, &comp).is_ok() {
            chosen = candidate;
        } else {
            // The exact minimum would disconnect a pair; minimality
            // under the routability side-constraint is out of scope.
            fell_back = true;
            break;
        }
    }

    // Greedy fallback with gap accounting.
    let _ = fell_back;
    let (disables, routes, covered) =
        synthesize_greedy_masked(net, ends, mask, &comp, cfg.greedy_iterations)?;
    let greedy_size = disables.len();
    finalize(
        disables,
        routes,
        covered,
        greedy_size,
        lower_bound,
        pool.len(),
        false,
        truncated,
        bb_nodes,
        cfg.max_rounds,
    )
}

/// The decision procedure: does a deadlock-free routing exist for all
/// ordered pairs of `ends`? Total — always returns either a certified
/// witness or a replayable obstruction. See the module docs for the
/// condition this implements.
pub fn deadlock_free_routing_exists(net: &Network, ends: &[NodeId]) -> Decision {
    decide(net, ends, None, &ExactConfig::default())
}

/// [`deadlock_free_routing_exists`] with an explicit fault mask and
/// budgets — the form the healing fallback uses. Under a mask the
/// required pairs are those still connected in the surviving network;
/// an obstruction is returned only when *no* required pair computation
/// is possible, i.e. some pair of live end nodes is severed.
pub fn decide(
    net: &Network,
    ends: &[NodeId],
    mask: Option<&DeadMask>,
    cfg: &ExactConfig,
) -> Decision {
    let comp = components(net, mask);
    let labels: Vec<u32> = ends.iter().map(|&e| comp[e.index()]).collect();
    let mut sample = Vec::new();
    let mut affected = 0usize;
    for s in 0..ends.len() {
        for d in 0..ends.len() {
            if s != d && (labels[s] == DEAD || labels[d] == DEAD || labels[s] != labels[d]) {
                affected += 1;
                if sample.len() < SAMPLE {
                    sample.push((s, d));
                }
            }
        }
    }
    if affected > 0 {
        return Decision::NoRouting(Box::new(Obstruction {
            pairs: sample,
            affected,
            end_components: labels,
        }));
    }
    match synthesize_disables_exact(net, ends, mask, cfg) {
        Ok(synth) => Decision::Free(Box::new(synth)),
        Err(_) => {
            // Constructive sufficiency backstop: on a connected
            // full-duplex component an up*/down* order always exists,
            // so the witness construction cannot actually fail — but
            // keep the procedure total by building that routing
            // explicitly.
            let empty = DeadMask::new(net);
            let the_mask = mask.unwrap_or(&empty);
            let rep = fractanet_route::repair::repair_tables(net, ends, the_mask);
            let routes = fractanet_route::repair::trace_surviving(net, ends, the_mask, &rep.tables);
            let rank = rank_certificate(net, &routes)
                .expect("up*/down* routing is acyclic by construction");
            Decision::Free(Box::new(ExactSynthesis {
                witness: Witness {
                    routes,
                    disables: DisableSet::new(),
                    rank,
                },
                connected_pairs: rep.connected_pairs,
                total_pairs: rep.total_pairs,
                greedy_size: usize::MAX,
                lower_bound: 0,
                cycles_seen: 0,
                proven_minimal: false,
                truncated: false,
                bb_nodes: 0,
                rounds: 0,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_deadlock_free;
    use fractanet_topo::{Hypercube, Mesh2D, Ring, Topology};

    #[test]
    fn decision_is_free_on_connected_topologies() {
        let h = Hypercube::new(3, 1, 6).unwrap();
        let Decision::Free(synth) = deadlock_free_routing_exists(h.net(), h.end_nodes()) else {
            panic!("3-cube must admit deadlock-free routing");
        };
        let covered = synth.witness.replay(h.net(), h.end_nodes()).unwrap();
        let n = h.end_nodes().len();
        assert_eq!(covered, n * (n - 1));
        assert!(verify_deadlock_free(h.net(), &synth.witness.routes).is_ok());
    }

    #[test]
    fn decision_obstruction_on_severed_network() {
        let r = Ring::new(4, 1, 6).unwrap();
        let mut mask = DeadMask::new(r.net());
        // Killing two opposite links splits the ring in half.
        let mut router_links = r.net().links().filter(|&l| {
            let info = r.net().link(l);
            r.net().is_router(info.a.0) && r.net().is_router(info.b.0)
        });
        let l0 = router_links.next().unwrap();
        let l2 = router_links.nth(1).unwrap();
        mask.kill_link(l0);
        mask.kill_link(l2);
        let d = decide(r.net(), r.end_nodes(), Some(&mask), &ExactConfig::default());
        let Decision::NoRouting(obs) = d else {
            panic!("severed ring must yield an obstruction");
        };
        assert!(obs.affected > 0);
        obs.replay(r.net(), r.end_nodes(), Some(&mask)).unwrap();
        // The obstruction does not replay against the unmasked net.
        assert!(obs.replay(r.net(), r.end_nodes(), None).is_err());
    }

    #[test]
    fn exact_synthesis_not_larger_than_greedy_on_cube() {
        let h = Hypercube::new(3, 1, 6).unwrap();
        let synth =
            synthesize_disables_exact(h.net(), h.end_nodes(), None, &ExactConfig::default())
                .unwrap();
        assert!(verify_deadlock_free(h.net(), &synth.witness.routes).is_ok());
        assert!(synth.disables() <= synth.greedy_size, "{synth:?}");
        assert!(synth.lower_bound <= synth.disables());
        synth.witness.replay(h.net(), h.end_nodes()).unwrap();
    }

    #[test]
    fn mesh_free_routing_synthesizes_clean() {
        let m = Mesh2D::new(3, 3, 1, 6).unwrap();
        let synth =
            synthesize_disables_exact(m.net(), m.end_nodes(), None, &ExactConfig::default())
                .unwrap();
        assert!(verify_deadlock_free(m.net(), &synth.witness.routes).is_ok());
        synth.witness.replay(m.net(), m.end_nodes()).unwrap();
    }

    #[test]
    fn witness_replay_rejects_tampering() {
        let h = Hypercube::new(2, 1, 6).unwrap();
        let Decision::Free(mut synth) = deadlock_free_routing_exists(h.net(), h.end_nodes()) else {
            panic!("2-cube must be Free");
        };
        synth.witness.replay(h.net(), h.end_nodes()).unwrap();
        // Corrupt the rank of the first channel of some path: replay
        // must notice the order violation.
        let victim = synth.witness.routes.path(0, 1)[0];
        synth.witness.rank[victim.index()] = u32::MAX;
        assert!(synth.witness.replay(h.net(), h.end_nodes()).is_err());
    }

    #[test]
    fn certificate_json_is_well_formed() {
        let r = Ring::new(4, 1, 6).unwrap();
        let Decision::Free(synth) = deadlock_free_routing_exists(r.net(), r.end_nodes()) else {
            panic!("ring must be Free");
        };
        let j = synth.certificate_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"disables\":["));
        assert!(j.contains("\"rank\":["));
        assert!(j.contains("\"proven_minimal\":"));
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn min_cycle_disables_pins_the_ring() {
        // The two wrap cycles of the shortest-routed 4-ring are
        // edge-disjoint: the exact minimum is one turn each.
        let r = Ring::new(4, 1, 6).unwrap();
        let rs = crate::disables::route_all(r.net(), r.end_nodes(), &DisableSet::new()).unwrap();
        let _ = rs; // free routing may be acyclic; use the canonical cyclic tables instead
        let cycles = vec![vec![0u32, 2, 4, 6], vec![7, 5, 3, 1]];
        let sol = min_cycle_disables(&cycles, 100_000);
        assert_eq!(sol.turns.len(), 2);
        assert!(sol.proven_minimal);
        assert_eq!(sol.lower_bound, 2);
        assert!(sol.greedy_size >= 2);
    }
}
