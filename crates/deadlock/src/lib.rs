//! # fractanet-deadlock
//!
//! Deadlock analysis after Dally & Seitz (the paper's reference \[6\]):
//! a deterministic wormhole-routed network is deadlock-free **iff** its
//! channel dependency graph is acyclic. This crate builds that graph
//! from a topology plus a traced [`RouteSet`], verifies acyclicity,
//! explains violations in terms of the Fig 1 blocked-packet picture,
//! synthesizes path disables that break cycles (the Fig 2 technique),
//! and provides the wait-for-graph detector the flit simulator uses to
//! recognize a deadlock that actually happened.
//!
//! [`RouteSet`]: fractanet_route::RouteSet

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cdg;
pub mod disables;
pub mod verify;
pub mod waitgraph;

pub use cdg::ChannelDependencyGraph;
pub use disables::{synthesize_disables, DisableSet, SynthesisError};
pub use verify::{verify_deadlock_free, verify_deadlock_free_tables, DeadlockReport};
pub use waitgraph::WaitGraph;
