//! # fractanet-deadlock
//!
//! Deadlock analysis after Dally & Seitz (the paper's reference \[6\]):
//! a deterministic wormhole-routed network is deadlock-free **iff** its
//! channel dependency graph is acyclic. This crate builds that graph
//! from a topology plus a traced [`RouteSet`], verifies acyclicity,
//! explains violations in terms of the Fig 1 blocked-packet picture,
//! synthesizes path disables that break cycles (the Fig 2 technique),
//! decides *whether* a deadlock-free routing exists at all and proves
//! it either way with replayable certificates ([`exact`]), and provides
//! the wait-for-graph detector the flit simulator uses to recognize a
//! deadlock that actually happened.
//!
//! [`RouteSet`]: fractanet_route::RouteSet

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cdg;
pub mod disables;
pub mod exact;
pub mod verify;
pub mod waitgraph;

pub use cdg::ChannelDependencyGraph;
pub use disables::{route_one_masked, synthesize_disables, DisableSet, SynthesisError};
pub use exact::{
    deadlock_free_routing_exists, decide, min_cycle_disables, synthesize_disables_exact,
    CycleDisables, Decision, ExactConfig, ExactSynthesis, Obstruction, Witness,
};
pub use verify::{verify_deadlock_free, verify_deadlock_free_tables, DeadlockReport};
pub use waitgraph::WaitGraph;
