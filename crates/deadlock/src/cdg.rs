//! Channel dependency graphs.
//!
//! A vertex per unidirectional channel; an edge `c₁ → c₂` whenever some
//! route acquires `c₂` while still holding `c₁` (consecutive channels
//! of a wormhole path). "Deadlocks can occur when a set of packets
//! cannot make further progress because of a circular dependency in
//! which each packet must wait for another to proceed before acquiring
//! access to an output link" — a cycle here is exactly that circular
//! dependency, made static.

use fractanet_graph::{AdjList, ChannelId, Network, NodeId};
use fractanet_route::{Paths, RouteSet, Routes};

/// The channel dependency graph of a routed network.
#[derive(Clone, Debug)]
pub struct ChannelDependencyGraph {
    graph: AdjList,
    /// Which (src,dst) pair contributed each dependency — kept sparse:
    /// one witness pair per distinct edge, for diagnostics.
    witnesses: Vec<(u32, u32, usize, usize)>,
}

impl ChannelDependencyGraph {
    /// Builds the CDG from every path of `routes`. Duplicate
    /// dependencies (contributed by many pairs) are collapsed.
    pub fn from_routes(net: &Network, routes: &RouteSet) -> Self {
        Self::from_paths(net, Paths::dense(routes))
    }

    /// Builds the CDG by walking destination tables directly — no
    /// dense path matrix is materialized. Pairs whose trace fails
    /// (holes, loops) contribute no dependencies; the linter reports
    /// those separately.
    pub fn from_tables(net: &Network, ends: &[NodeId], routes: &Routes) -> Self {
        Self::from_paths(net, Paths::tables(net, ends, routes))
    }

    /// Builds the CDG from any per-pair path view. Duplicate
    /// dependencies (contributed by many pairs) are collapsed.
    pub fn from_paths(net: &Network, paths: Paths<'_>) -> Self {
        let n = net.channel_count();
        let mut graph = AdjList::new(n);
        let mut seen = std::collections::HashSet::new();
        let mut witnesses = Vec::new();
        paths.for_each_pair(|s, d, res| {
            let Ok(path) = res else { return };
            for w in path.windows(2) {
                let (a, b) = (w[0].0, w[1].0);
                if seen.insert((a, b)) {
                    graph.add_edge(a, b);
                    witnesses.push((a, b, s, d));
                }
            }
        });
        ChannelDependencyGraph { graph, witnesses }
    }

    /// Whether the network is deadlock-free under this routing
    /// (Dally & Seitz: CDG acyclic).
    pub fn is_deadlock_free(&self) -> bool {
        self.graph.is_acyclic()
    }

    /// One dependency cycle as channels, or `None` when deadlock-free.
    pub fn find_cycle(&self) -> Option<Vec<ChannelId>> {
        self.graph
            .find_cycle()
            .map(|vs| vs.into_iter().map(ChannelId).collect())
    }

    /// Number of distinct dependencies.
    pub fn dependency_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The underlying directed graph (vertices are
    /// `ChannelId::index()`).
    pub fn graph(&self) -> &AdjList {
        &self.graph
    }

    /// A witness route pair `(src, dst)` whose path contains the
    /// dependency `a → b`, if that dependency exists.
    pub fn witness(&self, a: ChannelId, b: ChannelId) -> Option<(usize, usize)> {
        self.witnesses
            .iter()
            .find(|&&(x, y, _, _)| x == a.0 && y == b.0)
            .map(|&(_, _, s, d)| (s, d))
    }

    /// Pretty-prints a cycle as `router --(link)--> router` steps for
    /// experiment output.
    pub fn describe_cycle(&self, net: &Network) -> Option<String> {
        let cyc = self.find_cycle()?;
        let mut out = String::from("channel-dependency cycle:\n");
        for (i, &ch) in cyc.iter().enumerate() {
            let s = net.channel_src(ch);
            let d = net.channel_dst(ch);
            let next = cyc[(i + 1) % cyc.len()];
            let wit = self
                .witness(ch, next)
                .map(|(a, b)| format!("  [held by a {a}->{b} packet]"))
                .unwrap_or_default();
            out.push_str(&format!(
                "  {} --{:?}--> {}{}\n",
                net.label(s),
                ch.link(),
                net.label(d),
                wit
            ));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_route::ringroute::{ring_clockwise_routes, ring_shortest_routes};
    use fractanet_route::{dor, RouteSet};
    use fractanet_topo::{Mesh2D, Ring, Topology};

    #[test]
    fn fig1_clockwise_ring_has_cycle() {
        // Figure 1: four wrap-around routes in a 4-router loop.
        let r = Ring::new(4, 1, 6).unwrap();
        let rs = RouteSet::from_table(r.net(), r.end_nodes(), &ring_clockwise_routes(&r)).unwrap();
        let cdg = ChannelDependencyGraph::from_routes(r.net(), &rs);
        assert!(!cdg.is_deadlock_free());
        let cyc = cdg.find_cycle().unwrap();
        // The minimal cycle is the four clockwise inter-router channels.
        assert_eq!(cyc.len(), 4);
        let desc = cdg.describe_cycle(r.net()).unwrap();
        assert!(
            desc.contains("R0"),
            "diagnostic should name routers: {desc}"
        );
    }

    #[test]
    fn shortest_ring_still_cyclic_at_4() {
        // Minimal ring routing keeps both 2-hop wrap routes, which is
        // enough to close the loop.
        let r = Ring::new(4, 1, 6).unwrap();
        let rs = RouteSet::from_table(r.net(), r.end_nodes(), &ring_shortest_routes(&r)).unwrap();
        let cdg = ChannelDependencyGraph::from_routes(r.net(), &rs);
        assert!(!cdg.is_deadlock_free());
    }

    #[test]
    fn mesh_dor_is_acyclic() {
        // The Fig 1 escape: the same four routers as a 2x2 mesh with
        // dimension-order routing ("routes A and C would be allowed,
        // but routes B and D would be disallowed").
        let m = Mesh2D::new(2, 2, 1, 6).unwrap();
        let rs = RouteSet::from_table(m.net(), m.end_nodes(), &dor::mesh_xy_routes(&m)).unwrap();
        let cdg = ChannelDependencyGraph::from_routes(m.net(), &rs);
        assert!(cdg.is_deadlock_free());
        assert!(cdg.find_cycle().is_none());
        assert!(cdg.describe_cycle(m.net()).is_none());
    }

    #[test]
    fn witnesses_identify_contributing_pairs() {
        let r = Ring::new(4, 1, 6).unwrap();
        let rs = RouteSet::from_table(r.net(), r.end_nodes(), &ring_clockwise_routes(&r)).unwrap();
        let cdg = ChannelDependencyGraph::from_routes(r.net(), &rs);
        let cyc = cdg.find_cycle().unwrap();
        let (s, d) = cdg.witness(cyc[0], cyc[1]).unwrap();
        // The witness pair's path must actually contain the two
        // channels consecutively.
        let p = rs.path(s, d);
        let pos = p.iter().position(|&c| c == cyc[0]).unwrap();
        assert_eq!(p[pos + 1], cyc[1]);
    }

    #[test]
    fn dependency_count_collapses_duplicates() {
        let m = Mesh2D::new(3, 1, 1, 6).unwrap();
        let rs = RouteSet::from_table(m.net(), m.end_nodes(), &dor::mesh_xy_routes(&m)).unwrap();
        let cdg = ChannelDependencyGraph::from_routes(m.net(), &rs);
        // 1x3 mesh with 1 node/router: dependencies are few and unique.
        // attach->R0R1, R0R1->R1R2, R1R2->attach, and mirrored; plus
        // middle-node turns.
        assert!(cdg.dependency_count() <= m.net().channel_count() * 2);
        assert!(cdg.is_deadlock_free());
    }
}
