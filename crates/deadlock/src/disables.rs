//! Path-disable synthesis — the Figure 2 technique, automated.
//!
//! "Figure 2 shows a 3-dimensional hypercube with certain paths
//! disallowed in order to break cycles. By designating specific paths
//! to be disabled, the routing algorithm is less restrictive than
//! dimension-order routing."
//!
//! A *disable* here is a forbidden turn: an ordered pair of channels
//! `(in, out)` that no route may take consecutively — exactly what the
//! ServerNet router's path-disable registers enforce in hardware
//! ("path disable logic that can be set to enforce the elimination of
//! the loops, even if the routing table is corrupted by a fault",
//! §2.4). Synthesis iterates: route every pair by shortest allowed
//! path, build the channel dependency graph, and when a cycle remains,
//! disable one turn on it (preferring a turn whose removal keeps every
//! pair routable), until the CDG is acyclic.

use crate::cdg::ChannelDependencyGraph;
use fractanet_graph::{ChannelId, Network, NodeId};
use fractanet_route::{DeadMask, RouteSet};
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// A set of forbidden channel→channel turns.
#[derive(Clone, Debug, Default)]
pub struct DisableSet {
    forbidden: HashSet<(u32, u32)>,
}

impl DisableSet {
    /// The empty set: all turns allowed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forbids taking `out` immediately after `in_`.
    pub fn insert(&mut self, in_: ChannelId, out: ChannelId) {
        self.forbidden.insert((in_.0, out.0));
    }

    /// Whether the turn is forbidden.
    pub fn contains(&self, in_: ChannelId, out: ChannelId) -> bool {
        self.forbidden.contains(&(in_.0, out.0))
    }

    /// Number of disabled turns.
    pub fn len(&self) -> usize {
        self.forbidden.len()
    }

    /// Whether no turn is disabled.
    pub fn is_empty(&self) -> bool {
        self.forbidden.is_empty()
    }

    /// Iterates the disabled turns.
    pub fn iter(&self) -> impl Iterator<Item = (ChannelId, ChannelId)> + '_ {
        self.forbidden
            .iter()
            .map(|&(a, b)| (ChannelId(a), ChannelId(b)))
    }
}

/// Errors from [`synthesize_disables`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthesisError {
    /// Some end-node pair has no allowed path (before any disable was
    /// added — a disconnected network).
    Unroutable {
        /// Source address.
        src: usize,
        /// Destination address.
        dst: usize,
    },
    /// Every candidate turn on a remaining cycle would disconnect some
    /// pair, or the iteration cap was reached.
    DidNotConverge {
        /// Disables accumulated before giving up.
        disables: usize,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Unroutable { src, dst } => {
                write!(f, "no allowed path from {src} to {dst}")
            }
            SynthesisError::DidNotConverge { disables } => {
                write!(
                    f,
                    "disable synthesis did not converge ({disables} turns disabled)"
                )
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

/// Shortest allowed path from `ends[src]` to `ends[dst]` under a
/// disable set: BFS in channel space (states are channels; U-turns are
/// always forbidden). Returns `None` when no allowed path exists.
pub fn route_one(
    net: &Network,
    ends: &[NodeId],
    disables: &DisableSet,
    src: usize,
    dst: usize,
) -> Option<Vec<ChannelId>> {
    route_one_masked(net, ends, disables, None, src, dst)
}

/// [`route_one`] restricted to channels and routers that survive a
/// fault mask (`None` = everything alive) — the form the healing
/// fallback synthesizer routes with.
pub fn route_one_masked(
    net: &Network,
    ends: &[NodeId],
    disables: &DisableSet,
    mask: Option<&DeadMask>,
    src: usize,
    dst: usize,
) -> Option<Vec<ChannelId>> {
    if src == dst {
        return Some(Vec::new());
    }
    let alive_node = |v: NodeId| mask.is_none_or(|m| m.node_ok(v));
    let alive_ch = |ch: ChannelId| mask.is_none_or(|m| m.channel_ok(net, ch));
    if !alive_node(ends[src]) || !alive_node(ends[dst]) {
        return None;
    }
    let target = ends[dst];
    let &(inject, first_router) = net.channels_from(ends[src]).first()?;
    if !alive_ch(inject) || !alive_node(first_router) {
        return None;
    }
    let nch = net.channel_count();
    let mut prev: Vec<Option<ChannelId>> = vec![None; nch];
    let mut seen = vec![false; nch];
    seen[inject.index()] = true;
    let mut q = VecDeque::from([inject]);
    while let Some(ch) = q.pop_front() {
        let here = net.channel_dst(ch);
        if here == target {
            // Rebuild.
            let mut path = vec![ch];
            let mut cur = ch;
            while let Some(p) = prev[cur.index()] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        if !net.is_router(here) {
            continue; // arrived at a foreign end node: dead end
        }
        for &(out, next) in net.channels_from(here) {
            if out == ch.reverse()
                || disables.contains(ch, out)
                || seen[out.index()]
                || !alive_ch(out)
                || !alive_node(next)
            {
                continue;
            }
            seen[out.index()] = true;
            prev[out.index()] = Some(ch);
            q.push_back(out);
        }
    }
    None
}

/// Routes every pair under a disable set; `Err((src, dst))` names the
/// first unroutable pair.
pub fn route_all(
    net: &Network,
    ends: &[NodeId],
    disables: &DisableSet,
) -> Result<RouteSet, (usize, usize)> {
    let n = ends.len();
    let mut failed = None;
    let rs = RouteSet::from_pairs(n, |s, d| match route_one(net, ends, disables, s, d) {
        Some(p) => p,
        None => {
            failed.get_or_insert((s, d));
            Vec::new()
        }
    });
    match failed {
        Some(pair) => Err(pair),
        None => Ok(rs),
    }
}

/// Iteratively disables turns until the channel dependency graph is
/// acyclic. Returns the disable set and the final (deadlock-free)
/// routes.
pub fn synthesize_disables(
    net: &Network,
    ends: &[NodeId],
    max_iterations: usize,
) -> Result<(DisableSet, RouteSet), SynthesisError> {
    let mut disables = DisableSet::new();
    let mut routes = route_all(net, ends, &disables)
        .map_err(|(src, dst)| SynthesisError::Unroutable { src, dst })?;

    for _ in 0..max_iterations {
        let cdg = ChannelDependencyGraph::from_routes(net, &routes);
        let Some(cycle) = cdg.find_cycle() else {
            return Ok((disables, routes));
        };
        // Try each turn on the cycle; keep the first that stays
        // routable.
        let mut advanced = false;
        for i in 0..cycle.len() {
            let a = cycle[i];
            let b = cycle[(i + 1) % cycle.len()];
            let mut candidate = disables.clone();
            candidate.insert(a, b);
            if let Ok(rs) = route_all(net, ends, &candidate) {
                disables = candidate;
                routes = rs;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return Err(SynthesisError::DidNotConverge {
                disables: disables.len(),
            });
        }
    }
    // A disable inserted on the final allowed iteration may already
    // have made the CDG acyclic — check once more before reporting
    // non-convergence.
    let cdg = ChannelDependencyGraph::from_routes(net, &routes);
    if cdg.find_cycle().is_none() {
        return Ok((disables, routes));
    }
    Err(SynthesisError::DidNotConverge {
        disables: disables.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_deadlock_free;
    use fractanet_topo::{Hypercube, Ring, Topology};

    #[test]
    fn unrestricted_routing_is_minimal() {
        let h = Hypercube::new(3, 1, 6).unwrap();
        let rs = route_all(h.net(), h.end_nodes(), &DisableSet::new()).unwrap();
        for (s, d, p) in rs.pairs() {
            let hamming = (h.corner_of_addr(s) ^ h.corner_of_addr(d)).count_ones() as usize;
            assert_eq!(p.len() - 1, hamming + 1, "{s}->{d}");
        }
    }

    #[test]
    fn synthesis_breaks_hypercube_cycles() {
        // The Fig 2 experiment: a 3-cube routed greedily deadlocks;
        // after synthesis the CDG is acyclic and everything still
        // routes.
        let h = Hypercube::new(3, 1, 6).unwrap();
        let before = route_all(h.net(), h.end_nodes(), &DisableSet::new()).unwrap();
        // (Greedy shortest-path routing on a cube is not guaranteed
        // cyclic, but with build-order tie-breaks it is.)
        let had_cycle = verify_deadlock_free(h.net(), &before).is_err();
        let (disables, routes) = synthesize_disables(h.net(), h.end_nodes(), 200).unwrap();
        assert!(verify_deadlock_free(h.net(), &routes).is_ok());
        if had_cycle {
            assert!(!disables.is_empty(), "breaking cycles requires disables");
        }
        // Still fully routable (route_all succeeded inside synthesis).
        for (s, d, p) in routes.pairs() {
            assert_eq!(
                h.net().channel_dst(*p.last().unwrap()),
                h.end_nodes()[d],
                "{s}->{d}"
            );
        }
    }

    #[test]
    fn synthesis_fixes_rings() {
        // Greedy tie-breaks happen to route the 4-ring acyclically, so
        // sweep several sizes: whatever the starting point, synthesis
        // must end deadlock-free, and disables appear exactly when the
        // unrestricted CDG had a cycle.
        for n in 4..=7usize {
            let r = Ring::new(n, 1, 6).unwrap();
            let before = route_all(r.net(), r.end_nodes(), &DisableSet::new()).unwrap();
            let had_cycle = verify_deadlock_free(r.net(), &before).is_err();
            let (disables, routes) = synthesize_disables(r.net(), r.end_nodes(), 100).unwrap();
            assert!(verify_deadlock_free(r.net(), &routes).is_ok(), "ring {n}");
            assert_eq!(!disables.is_empty(), had_cycle, "ring {n}");
        }
    }

    #[test]
    fn synthesis_converging_exactly_at_max_iterations_succeeds() {
        // Regression: a disable inserted on the final allowed
        // iteration used to be reported as DidNotConverge without a
        // last acyclicity check. Find a ring whose greedy routing needs
        // disables, measure how many, then re-run with a budget of
        // exactly that many iterations: every iteration inserts one
        // disable, the loop ends, and only the post-loop CDG check can
        // notice success.
        let (r, k) = (4..=9usize)
            .find_map(|n| {
                let r = Ring::new(n, 1, 6).unwrap();
                let (disables, _) = synthesize_disables(r.net(), r.end_nodes(), 200).unwrap();
                let k = disables.len();
                (k > 0).then_some((r, k))
            })
            .expect("some ring size needs disables under build-order ties");
        let tight = synthesize_disables(r.net(), r.end_nodes(), k);
        let (tight_disables, routes) = tight.expect("convergence on the last iteration is success");
        assert_eq!(tight_disables.len(), k);
        assert!(verify_deadlock_free(r.net(), &routes).is_ok());
        // One fewer iteration genuinely cannot converge.
        let err = synthesize_disables(r.net(), r.end_nodes(), k - 1)
            .map(|(d, _)| d.len())
            .expect_err("k-1 iterations must not suffice");
        assert_eq!(err, SynthesisError::DidNotConverge { disables: k - 1 });
    }

    #[test]
    fn disable_set_basics() {
        let mut d = DisableSet::new();
        assert!(d.is_empty());
        d.insert(ChannelId(0), ChannelId(2));
        d.insert(ChannelId(0), ChannelId(2));
        assert_eq!(d.len(), 1);
        assert!(d.contains(ChannelId(0), ChannelId(2)));
        assert!(!d.contains(ChannelId(2), ChannelId(0)));
        assert_eq!(d.iter().count(), 1);
    }

    #[test]
    fn route_one_respects_disables() {
        // Disable the only turn of a 2-router path: the pair becomes
        // unroutable.
        use fractanet_graph::{LinkClass, Network, PortId};
        let mut net = Network::new();
        let r0 = net.add_router("r0", 6);
        let r1 = net.add_router("r1", 6);
        net.connect(r0, PortId(0), r1, PortId(0), LinkClass::Local)
            .unwrap();
        let n0 = net.add_end_node("n0");
        let n1 = net.add_end_node("n1");
        net.connect(r0, PortId(1), n0, PortId(0), LinkClass::Attach)
            .unwrap();
        net.connect(r1, PortId(1), n1, PortId(0), LinkClass::Attach)
            .unwrap();
        let ends = vec![n0, n1];

        let free = route_one(&net, &ends, &DisableSet::new(), 0, 1).unwrap();
        assert_eq!(free.len(), 3);
        let mut d = DisableSet::new();
        d.insert(free[0], free[1]);
        assert!(route_one(&net, &ends, &d, 0, 1).is_none());
    }

    #[test]
    fn u_turns_never_taken() {
        let h = Hypercube::new(2, 1, 6).unwrap();
        let rs = route_all(h.net(), h.end_nodes(), &DisableSet::new()).unwrap();
        for (_, _, p) in rs.pairs() {
            for w in p.windows(2) {
                assert_ne!(w[1], w[0].reverse(), "route took a U-turn");
            }
        }
    }
}
