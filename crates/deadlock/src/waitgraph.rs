//! Runtime wait-for-graph deadlock detection.
//!
//! The CDG of [`crate::cdg`] is the *static* analysis: a cycle there
//! means deadlock is possible. The flit simulator needs the *dynamic*
//! counterpart: given which packet currently holds each channel and
//! which channel it is stalled waiting for, is there an actual circular
//! wait right now? That is a cycle in the wait-for graph over channels.

use fractanet_graph::{AdjList, ChannelId};
use std::collections::HashSet;

/// A wait-for graph over a network's channels, rebuilt each time the
/// simulator suspects a stall.
#[derive(Clone, Debug)]
pub struct WaitGraph {
    n: usize,
    edges: Vec<(u32, u32)>,
    seen: HashSet<(u32, u32)>,
}

impl WaitGraph {
    /// Creates an empty wait-for graph over `n_channels` channels.
    pub fn new(n_channels: usize) -> Self {
        WaitGraph {
            n: n_channels,
            edges: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Records that the packet holding `held` is stalled waiting to
    /// acquire `wanted`. Duplicate waits (several flits of the same
    /// stalled packet, or repeated probes of the same stall) collapse
    /// to a single edge, so [`len`](Self::len) counts *distinct* waits.
    pub fn add_wait(&mut self, held: ChannelId, wanted: ChannelId) {
        if self.seen.insert((held.0, wanted.0)) {
            self.edges.push((held.0, wanted.0));
        }
    }

    /// Number of recorded waits.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no waits were recorded.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// A circular wait, if one exists: the smoking gun of an actual
    /// wormhole deadlock (Fig 1's "the head of each packet is blocked
    /// by the tail of another").
    pub fn find_deadlock(&self) -> Option<Vec<ChannelId>> {
        let mut g = AdjList::new(self.n);
        for &(a, b) in &self.edges {
            g.add_edge(a, b);
        }
        g.find_cycle()
            .map(|vs| vs.into_iter().map(ChannelId).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_waits_no_deadlock() {
        assert!(WaitGraph::new(8).find_deadlock().is_none());
    }

    #[test]
    fn chain_is_not_deadlock() {
        let mut w = WaitGraph::new(8);
        w.add_wait(ChannelId(0), ChannelId(2));
        w.add_wait(ChannelId(2), ChannelId(4));
        assert_eq!(w.len(), 2);
        assert!(w.find_deadlock().is_none());
    }

    #[test]
    fn circular_wait_detected() {
        // The Fig 1 situation: four packets each hold one ring channel
        // and wait for the next.
        let mut w = WaitGraph::new(8);
        w.add_wait(ChannelId(0), ChannelId(2));
        w.add_wait(ChannelId(2), ChannelId(4));
        w.add_wait(ChannelId(4), ChannelId(6));
        w.add_wait(ChannelId(6), ChannelId(0));
        let cyc = w.find_deadlock().unwrap();
        assert_eq!(cyc.len(), 4);
    }

    #[test]
    fn duplicate_waits_collapse() {
        let mut w = WaitGraph::new(8);
        w.add_wait(ChannelId(0), ChannelId(2));
        w.add_wait(ChannelId(0), ChannelId(2));
        w.add_wait(ChannelId(0), ChannelId(2));
        w.add_wait(ChannelId(2), ChannelId(0));
        assert_eq!(w.len(), 2, "repeated waits must dedupe to one edge");
        let cyc = w.find_deadlock().unwrap();
        assert_eq!(cyc.len(), 2);
    }

    #[test]
    fn self_wait_is_deadlock() {
        let mut w = WaitGraph::new(4);
        w.add_wait(ChannelId(1), ChannelId(1));
        assert_eq!(w.find_deadlock().unwrap(), vec![ChannelId(1)]);
    }
}
