//! One-call deadlock-freedom verification with a human-readable
//! report, used by every experiment binary and by the integration
//! tests that check the paper's §2.4 claim ("the preceding routing
//! algorithm eliminates these loops and avoids possible deadlocks").

use crate::cdg::ChannelDependencyGraph;
use fractanet_graph::{ChannelId, Network, NodeId};
use fractanet_route::{RouteSet, Routes};
use std::fmt;

/// Evidence that a routed network can deadlock.
#[derive(Clone, Debug)]
pub struct DeadlockReport {
    /// A dependency cycle (channel sequence).
    pub cycle: Vec<ChannelId>,
    /// Pretty description naming routers and links.
    pub description: String,
    /// Total dependencies in the CDG.
    pub dependencies: usize,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} channels in cycle, {} dependencies total)",
            self.description,
            self.cycle.len(),
            self.dependencies
        )
    }
}

/// Verifies Dally & Seitz acyclicity for a routed network. `Ok(cdg)`
/// hands back the graph for further statistics.
///
/// ```
/// use fractanet_deadlock::verify_deadlock_free;
/// use fractanet_route::{fractal, RouteSet};
/// use fractanet_topo::{Fractahedron, Topology};
///
/// let f = Fractahedron::paper_fat_64();
/// let routes = fractal::fractal_routes(&f);
/// let rs = RouteSet::from_table(f.net(), f.end_nodes(), &routes).unwrap();
/// // §2.4: the depth-first routing leaves no dependency loops.
/// assert!(verify_deadlock_free(f.net(), &rs).is_ok());
/// ```
pub fn verify_deadlock_free(
    net: &Network,
    routes: &RouteSet,
) -> Result<ChannelDependencyGraph, Box<DeadlockReport>> {
    report_cycles(net, ChannelDependencyGraph::from_routes(net, routes))
}

/// [`verify_deadlock_free`] over destination tables directly, walking
/// the table per pair instead of materializing a path matrix.
pub fn verify_deadlock_free_tables(
    net: &Network,
    ends: &[NodeId],
    routes: &Routes,
) -> Result<ChannelDependencyGraph, Box<DeadlockReport>> {
    report_cycles(net, ChannelDependencyGraph::from_tables(net, ends, routes))
}

fn report_cycles(
    net: &Network,
    cdg: ChannelDependencyGraph,
) -> Result<ChannelDependencyGraph, Box<DeadlockReport>> {
    match cdg.find_cycle() {
        None => Ok(cdg),
        Some(cycle) => {
            let description = cdg
                .describe_cycle(net)
                .unwrap_or_else(|| "unnamed cycle".to_string());
            Err(Box::new(DeadlockReport {
                cycle,
                description,
                dependencies: cdg.dependency_count(),
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_route::fattree::{fattree_routes, UpPolicy};
    use fractanet_route::fractal::fractal_routes;
    use fractanet_route::ringroute::ring_clockwise_routes;
    use fractanet_route::treeroute::updown_routeset;
    use fractanet_route::{direct, dor, RouteSet};
    use fractanet_topo::{
        FatTree, Fractahedron, FullyConnectedCluster, Hypercube, Mesh2D, Ring, Topology, Variant,
    };

    fn table_set<T: Topology>(t: &T, routes: &fractanet_route::Routes) -> RouteSet {
        RouteSet::from_table(t.net(), t.end_nodes(), routes).unwrap()
    }

    #[test]
    fn fat_fractahedron_is_deadlock_free() {
        // §2.4: "the addition of multiple layers has also introduced
        // potential routing loops. However the preceding routing
        // algorithm eliminates these loops".
        for n in 1..=3usize {
            let f = Fractahedron::new(n, Variant::Fat, false).unwrap();
            let rs = table_set(&f, &fractal_routes(&f));
            assert!(
                verify_deadlock_free(f.net(), &rs).is_ok(),
                "fat fractahedron N={n} must be deadlock-free"
            );
        }
    }

    #[test]
    fn thin_fractahedron_is_deadlock_free() {
        for n in 1..=2usize {
            let f = Fractahedron::new(n, Variant::Thin, false).unwrap();
            let rs = table_set(&f, &fractal_routes(&f));
            assert!(verify_deadlock_free(f.net(), &rs).is_ok());
        }
    }

    #[test]
    fn fanout_fractahedron_is_deadlock_free() {
        let f = Fractahedron::new(1, Variant::Fat, true).unwrap();
        let rs = table_set(&f, &fractal_routes(&f));
        assert!(verify_deadlock_free(f.net(), &rs).is_ok());
    }

    #[test]
    fn fat_trees_are_deadlock_free() {
        for (ft, policy) in [
            (FatTree::paper_4_2_64(), UpPolicy::ByLeafRouter),
            (FatTree::paper_4_2_64(), UpPolicy::ByGroup),
            (FatTree::paper_3_3_64(), UpPolicy::ByLeafRouter),
        ] {
            let rs = table_set(&ft, &fattree_routes(&ft, policy));
            assert!(
                verify_deadlock_free(ft.net(), &rs).is_ok(),
                "{} {policy:?}",
                ft.name()
            );
        }
    }

    #[test]
    fn mesh_dor_is_deadlock_free_at_paper_size() {
        let m = Mesh2D::new(6, 6, 2, 6).unwrap();
        let rs = table_set(&m, &dor::mesh_xy_routes(&m));
        assert!(verify_deadlock_free(m.net(), &rs).is_ok());
    }

    #[test]
    fn hypercube_ecube_is_deadlock_free() {
        let h = Hypercube::new(4, 2, 6).unwrap();
        let rs = table_set(&h, &dor::ecube_routes(&h));
        assert!(verify_deadlock_free(h.net(), &rs).is_ok());
    }

    #[test]
    fn hypercube_updown_is_deadlock_free() {
        // Fig 2's disable discipline, modeled as up*/down*.
        let h = Hypercube::new(3, 2, 6).unwrap();
        let rs = updown_routeset(h.net(), h.end_nodes(), h.router(0));
        assert!(verify_deadlock_free(h.net(), &rs).is_ok());
    }

    #[test]
    fn clusters_are_deadlock_free() {
        for m in 2..=6usize {
            let c = FullyConnectedCluster::new(m, 6).unwrap();
            let rs = table_set(&c, &direct::cluster_routes(&c));
            assert!(verify_deadlock_free(c.net(), &rs).is_ok(), "m = {m}");
        }
    }

    #[test]
    fn clockwise_ring_reports_cycle() {
        let r = Ring::new(4, 1, 6).unwrap();
        let rs = table_set(&r, &ring_clockwise_routes(&r));
        let report = verify_deadlock_free(r.net(), &rs).unwrap_err();
        assert_eq!(report.cycle.len(), 4);
        assert!(report.to_string().contains("cycle"));
    }
}
