//! Property-based tests for the exact deadlock layer over random
//! connected topologies: the exact synthesizer never does worse than
//! the greedy one, both results certify acyclic, the decision
//! procedure is `Free` exactly when the network is connected, and
//! every certificate survives an independent replay.

use fractanet_deadlock::{
    deadlock_free_routing_exists, min_cycle_disables, synthesize_disables,
    synthesize_disables_exact, verify_deadlock_free, Decision, ExactConfig,
};
use fractanet_graph::{LinkClass, Network, NodeId};
use proptest::prelude::*;

/// A random connected network: `n` routers joined by a spanning chain
/// (connectivity) plus arbitrary extra cables (cycles), one end node
/// per router.
fn connected_net(n: usize, pairs: &[(u32, u32)]) -> (Network, Vec<NodeId>) {
    let mut net = Network::new();
    let routers: Vec<NodeId> = (0..n)
        .map(|i| net.add_router(format!("r{i}"), 10))
        .collect();
    for w in routers.windows(2) {
        net.connect_any(w[0], w[1], LinkClass::Local)
            .expect("chain cable");
    }
    // Attach ends before the random extras so port exhaustion can
    // never sever an end node.
    let ends: Vec<NodeId> = routers
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            let e = net.add_end_node(format!("n{i}"));
            net.connect_any(e, r, LinkClass::Attach).expect("attach");
            e
        })
        .collect();
    for &(a, b) in pairs {
        // Ignore failures (port exhaustion, self loops) exactly as the
        // graph proptests do — successes only ever add cycles.
        let _ = net.connect_any(
            routers[a as usize % n],
            routers[b as usize % n],
            LinkClass::Local,
        );
    }
    (net, ends)
}

fn cable_lists(n: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n as u32, 0..n as u32), 0..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On a connected network the decision is always `Free`, the
    /// witness covers every ordered pair, replays cleanly, and its
    /// routes certify acyclic.
    #[test]
    fn decision_free_and_replayable_on_connected(pairs in cable_lists(6)) {
        let (net, ends) = connected_net(6, &pairs);
        match deadlock_free_routing_exists(&net, &ends) {
            Decision::Free(synth) => {
                let covered = synth.witness.replay(&net, &ends).expect("replay");
                prop_assert_eq!(covered, ends.len() * (ends.len() - 1));
                prop_assert!(verify_deadlock_free(&net, &synth.witness.routes).is_ok());
            }
            Decision::NoRouting(obs) => {
                panic!("connected network declared unroutable: {obs:?}");
            }
        }
    }

    /// Exact synthesis needs no more disables than greedy, and both
    /// certify acyclic.
    #[test]
    fn exact_not_worse_than_greedy(pairs in cable_lists(6)) {
        let (net, ends) = connected_net(6, &pairs);
        let synth = synthesize_disables_exact(&net, &ends, None, &ExactConfig::default())
            .expect("exact synthesis");
        prop_assert!(verify_deadlock_free(&net, &synth.witness.routes).is_ok());
        if synth.greedy_size != usize::MAX {
            prop_assert!(synth.disables() <= synth.greedy_size);
        }
        let (disables, routes) = synthesize_disables(&net, &ends, 400).expect("greedy");
        prop_assert!(verify_deadlock_free(&net, &routes).is_ok());
        prop_assert!(synth.disables() <= disables.len());
    }

    /// Tampering with any single rank entry of a witness makes the
    /// replay reject it, unless the perturbed ranks still happen to be
    /// monotone along every path (replay checks the inequality itself,
    /// not the provenance of the numbers).
    #[test]
    fn replay_is_sound_under_rank_tampering(
        pairs in cable_lists(5),
        idx in 0usize..64,
    ) {
        let (net, ends) = connected_net(5, &pairs);
        let synth = synthesize_disables_exact(&net, &ends, None, &ExactConfig::default())
            .expect("exact synthesis");
        let mut tampered = synth.witness.clone();
        let i = idx % tampered.rank.len();
        tampered.rank[i] = 0;
        // Accepting is only sound if some independent check agrees:
        // the routes must still certify acyclic.
        if tampered.replay(&net, &ends).is_ok() {
            prop_assert!(verify_deadlock_free(&net, &tampered.routes).is_ok());
        }
        // Truncating the rank vector is always rejected.
        let mut short = synth.witness.clone();
        short.rank.pop();
        prop_assert!(short.replay(&net, &ends).is_err());
    }

    /// `min_cycle_disables` over random cycle families: the result
    /// hits every cycle's turn set, is no larger than greedy, no
    /// smaller than the packing lower bound, and matches brute force
    /// whenever it claims minimality.
    #[test]
    fn min_cycle_disables_is_a_hitting_set(
        cycles in prop::collection::vec(
            prop::collection::vec(0u32..10, 1..5), 1..7),
    ) {
        let sol = min_cycle_disables(&cycles, 100_000);
        // The turn set of cycle [c0, c1, ..] is its consecutive pairs
        // with wrap-around — mirror that to check coverage.
        let turn_sets: Vec<Vec<(u32, u32)>> = cycles
            .iter()
            .map(|c| (0..c.len()).map(|i| (c[i], c[(i + 1) % c.len()])).collect())
            .collect();
        for ts in &turn_sets {
            prop_assert!(ts.iter().any(|t| sol.turns.contains(t)), "{:?} unhit", ts);
        }
        prop_assert!(sol.turns.len() <= sol.greedy_size);
        prop_assert!(sol.lower_bound <= sol.turns.len());
        if sol.proven_minimal {
            // Brute-force cross-check over the turn universe (at most
            // 7 cycles x 4 turns = 28 turns; subsets of the distinct
            // ones, capped well below 2^20 in practice by dedup).
            let mut universe: Vec<(u32, u32)> =
                turn_sets.iter().flatten().copied().collect();
            universe.sort_unstable();
            universe.dedup();
            if universe.len() <= 16 {
                let mut best = universe.len();
                for mask in 0u32..(1 << universe.len()) {
                    let chosen: Vec<(u32, u32)> = universe
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| mask & (1 << i) != 0)
                        .map(|(_, &t)| t)
                        .collect();
                    if chosen.len() < best
                        && turn_sets
                            .iter()
                            .all(|ts| ts.iter().any(|t| chosen.contains(t)))
                    {
                        best = chosen.len();
                    }
                }
                prop_assert_eq!(sol.turns.len(), best);
            }
        }
    }
}
