//! Minimal JSON writing shared across the workspace.
//!
//! Several crates emit JSON for machine consumers — `fractanet lint
//! --json`, the telemetry JSONL / Chrome-trace exporters — and the
//! vendored serde shim only serializes derive-friendly structs, which
//! fits none of their hand-shaped payloads. Rather than each crate
//! hand-rolling `push_str` escaping (as the linter originally did),
//! this module provides one escaper and two tiny builders. Output is
//! compact (no whitespace), fields appear in insertion order, and
//! nothing here allocates beyond the output string.

use std::fmt::Display;

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, and control characters; everything else verbatim).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builder for one JSON object, written compactly in insertion order.
#[derive(Clone, Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// An empty object (`{}` if finished immediately).
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    /// Adds a string field (value escaped and quoted).
    pub fn field_str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Adds a numeric field (anything `Display`s as a bare token —
    /// integers, floats).
    pub fn field_num(mut self, k: &str, v: impl Display) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value verbatim (a nested object or
    /// array built separately).
    pub fn field_raw(mut self, k: &str, raw: &str) -> Self {
        self.key(k);
        self.buf.push_str(raw);
        self
    }

    /// Closes the object and yields the JSON text.
    pub fn build(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// Builder for one JSON array, written compactly in push order.
#[derive(Clone, Debug)]
pub struct JsonArray {
    buf: String,
    first: bool,
}

impl JsonArray {
    /// An empty array (`[]` if finished immediately).
    pub fn new() -> Self {
        JsonArray {
            buf: String::from("["),
            first: true,
        }
    }

    fn sep(&mut self) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
    }

    /// Pushes a string element (escaped and quoted).
    pub fn push_str_elem(&mut self, v: &str) -> &mut Self {
        self.sep();
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Pushes a numeric element.
    pub fn push_num(&mut self, v: impl Display) -> &mut Self {
        self.sep();
        self.buf.push_str(&v.to_string());
        self
    }

    /// Pushes a pre-rendered JSON value verbatim.
    pub fn push_raw(&mut self, raw: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(raw);
        self
    }

    /// Whether nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.first
    }

    /// Closes the array and yields the JSON text.
    pub fn build(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for JsonArray {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn object_renders_compact_in_order() {
        let mut arr = JsonArray::new();
        arr.push_num(3).push_num(5);
        let j = JsonObject::new()
            .field_str("name", "a\"b")
            .field_num("count", 2)
            .field_num("ratio", 0.5)
            .field_bool("ok", true)
            .field_raw("channels", &arr.build())
            .build();
        assert_eq!(
            j,
            "{\"name\":\"a\\\"b\",\"count\":2,\"ratio\":0.5,\"ok\":true,\"channels\":[3,5]}"
        );
    }

    #[test]
    fn empty_builders() {
        assert_eq!(JsonObject::new().build(), "{}");
        assert_eq!(JsonArray::new().build(), "[]");
        assert!(JsonArray::new().is_empty());
    }

    #[test]
    fn nested_objects_via_raw() {
        let inner = JsonObject::new().field_num("x", 1).build();
        let mut items = JsonArray::new();
        items.push_raw(&inner).push_str_elem("tag");
        let j = JsonObject::new().field_raw("items", &items.build()).build();
        assert_eq!(j, "{\"items\":[{\"x\":1},\"tag\"]}");
    }
}
