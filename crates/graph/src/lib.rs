//! # fractanet-graph
//!
//! Graph substrate for the `fractanet` workspace — the reproduction of
//! Horst, *"ServerNet Deadlock Avoidance and Fractahedral Topologies"*
//! (IPPS 1996).
//!
//! The paper reasons about **system area networks** built from routers
//! with a fixed number of ports, connected by full-duplex cables (each
//! cable is a pair of unidirectional channels). The analyses it performs
//! — hop counts, channel-dependency cycles, bisection min-cuts, and
//! worst-case link contention — all need a graph representation in which
//! *ports* and *unidirectional channels* are first-class, which is what
//! [`Network`] provides.
//!
//! On top of the network representation, this crate supplies the generic
//! algorithms every other crate in the workspace uses:
//!
//! * [`AdjList`] — a plain directed graph used for derived graphs such as
//!   channel-dependency graphs, with Tarjan SCC, acyclicity checks and
//!   topological sorting ([`adjlist`]).
//! * Breadth-first distances and all-pairs hop counts ([`bfs`]).
//! * Dinic max-flow / min-cut for bisection bandwidth ([`flow`]).
//! * Hopcroft–Karp maximum bipartite matching for the paper's
//!   "maximum link contention" metric ([`matching`]).
//! * A small union-find for connectivity checks ([`dsu`]).
//! * Exact minimum hitting set via branch and bound, for the deadlock
//!   layer's provably minimal turn-disable synthesis ([`hitting`]).
//!
//! The crate is dependency-free: the structures the paper needs (ports,
//! duplex link pairs, channel identities) are small and bespoke, so a
//! general-purpose graph library would be used for only a fraction of its
//! surface while still requiring the same wrapper types.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adjlist;
pub mod bfs;
pub mod dsu;
pub mod error;
pub mod flow;
pub mod hitting;
pub mod ids;
pub mod json;
pub mod matching;
pub mod network;
pub mod viz;

pub use adjlist::AdjList;
pub use dsu::DisjointSets;
pub use error::GraphError;
pub use hitting::{greedy_hitting_set, min_hitting_set, packing_lower_bound, HittingSetSolution};
pub use ids::{ChannelId, Direction, LinkId, NodeId, PortId};
pub use network::{LinkClass, LinkInfo, Network, NodeInfo, NodeKind};
