//! Graphviz export for visual inspection of topologies.
//!
//! The paper's figures are hand-drawn network diagrams; `to_dot` lets
//! any constructed [`Network`] be rendered the same way
//! (`dot -Tsvg out.dot`). Routers are boxes, end nodes are ellipses,
//! link classes are colored: attach = gray, intra-stage = black,
//! inter-level = blue with the level annotated.

use crate::network::{LinkClass, Network};
use std::fmt::Write;

/// Options for [`to_dot`].
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Graph name.
    pub name: String,
    /// Include end nodes (hide them to see router structure only).
    pub show_end_nodes: bool,
    /// Annotate links with their ids.
    pub show_link_ids: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "fractanet".into(),
            show_end_nodes: true,
            show_link_ids: false,
        }
    }
}

/// Renders the network as a Graphviz `graph` document.
pub fn to_dot(net: &Network, opts: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{}\" {{", opts.name);
    let _ = writeln!(out, "  layout=neato; overlap=false; splines=true;");
    for v in net.nodes() {
        let is_router = net.is_router(v);
        if !is_router && !opts.show_end_nodes {
            continue;
        }
        let shape = if is_router { "box" } else { "ellipse" };
        let style = if is_router { "filled" } else { "solid" };
        let fill = if is_router { "lightyellow" } else { "white" };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", shape={shape}, style={style}, fillcolor={fill}];",
            v.index(),
            net.label(v)
        );
    }
    for l in net.links() {
        let info = net.link(l);
        if !opts.show_end_nodes && (!net.is_router(info.a.0) || !net.is_router(info.b.0)) {
            continue;
        }
        let (color, extra) = match info.class {
            LinkClass::Attach => ("gray60", String::new()),
            LinkClass::Local => ("black", String::new()),
            LinkClass::Level(k) => ("blue", format!(", label=\"L{k}\"")),
        };
        let id = if opts.show_link_ids {
            format!(", xlabel=\"{}\"", l.index())
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  n{} -- n{} [color={color}{extra}{id}];",
            info.a.0.index(),
            info.b.0.index()
        );
    }
    out.push_str("}\n");
    out
}

/// Shorthand with default options.
pub fn to_dot_default(net: &Network) -> String {
    to_dot(net, &DotOptions::default())
}

/// Renders only the router fabric (end nodes hidden).
pub fn routers_only_dot(net: &Network, name: &str) -> String {
    to_dot(
        net,
        &DotOptions {
            name: name.into(),
            show_end_nodes: false,
            show_link_ids: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PortId;

    fn sample() -> Network {
        let mut net = Network::new();
        let a = net.add_router("A", 6);
        let b = net.add_router("B", 6);
        net.connect(a, PortId(0), b, PortId(0), LinkClass::Local)
            .unwrap();
        net.connect(a, PortId(5), b, PortId(5), LinkClass::Level(1))
            .unwrap();
        let e = net.add_end_node("cpu");
        net.connect(a, PortId(1), e, PortId(0), LinkClass::Attach)
            .unwrap();
        net
    }

    #[test]
    fn dot_contains_all_elements() {
        let net = sample();
        let dot = to_dot_default(&net);
        assert!(dot.starts_with("graph \"fractanet\" {"));
        assert!(dot.contains("label=\"A\""));
        assert!(dot.contains("label=\"cpu\""));
        assert!(dot.contains("n0 -- n1 [color=black]"));
        assert!(dot.contains("color=blue, label=\"L1\""));
        assert!(dot.contains("color=gray60"));
        assert!(dot.trim_end().ends_with('}'));
        // One node line per vertex, one edge line per cable.
        assert_eq!(dot.matches(" -- ").count(), 3);
    }

    #[test]
    fn routers_only_hides_end_nodes() {
        let net = sample();
        let dot = routers_only_dot(&net, "fabric");
        assert!(!dot.contains("cpu"));
        assert!(!dot.contains("gray60"));
        assert_eq!(dot.matches(" -- ").count(), 2);
    }

    #[test]
    fn link_ids_optional() {
        let net = sample();
        let opts = DotOptions {
            show_link_ids: true,
            ..DotOptions::default()
        };
        let dot = to_dot(&net, &opts);
        assert!(dot.contains("xlabel=\"0\""));
    }
}
