//! Strongly-typed identifiers for vertices, ports, cables and channels.
//!
//! ServerNet cables are full duplex: one physical cable carries two
//! unidirectional byte-serial links (the paper, §1: "Full duplex
//! operation is provided by pairing two unidirectional links in a
//! cable"). Deadlock analysis (channel-dependency graphs) operates on
//! the *unidirectional* channels, while cost and bisection accounting
//! operate on cables. We therefore keep two identifier types:
//! [`LinkId`] for the duplex cable and [`ChannelId`] for one direction
//! of it.

use std::fmt;

/// Index of a vertex in a [`crate::Network`]: either a router or an end
/// node (CPU or I/O adapter).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Index of a port on a specific router (0-based; a 6-port ServerNet
/// router has ports 0..6).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u8);

/// Index of a full-duplex cable in a [`crate::Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// Direction of travel over a cable, relative to the order in which its
/// endpoints were given to [`crate::Network::connect`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Direction {
    /// From the first endpoint (`a`) toward the second (`b`).
    Forward,
    /// From the second endpoint (`b`) toward the first (`a`).
    Reverse,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn flip(self) -> Self {
        match self {
            Direction::Forward => Direction::Reverse,
            Direction::Reverse => Direction::Forward,
        }
    }
}

/// One unidirectional channel: a (cable, direction) pair, packed so that
/// channels can index dense arrays.
///
/// The packing is `cable * 2 + direction`, so a network with `L` cables
/// has channels `0..2L`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// Builds the channel for travelling over `link` in `dir`.
    #[inline]
    pub fn new(link: LinkId, dir: Direction) -> Self {
        let bit = match dir {
            Direction::Forward => 0,
            Direction::Reverse => 1,
        };
        ChannelId(link.0 * 2 + bit)
    }

    /// The cable this channel belongs to.
    #[inline]
    pub fn link(self) -> LinkId {
        LinkId(self.0 / 2)
    }

    /// The direction of travel over [`Self::link`].
    #[inline]
    pub fn direction(self) -> Direction {
        if self.0 & 1 == 0 {
            Direction::Forward
        } else {
            Direction::Reverse
        }
    }

    /// The channel going the other way over the same cable.
    #[inline]
    pub fn reverse(self) -> Self {
        ChannelId(self.0 ^ 1)
    }

    /// Dense index usable for channel-keyed arrays (`0..2 * links`).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// Dense index usable for node-keyed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// Dense index usable for link-keyed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PortId {
    /// Dense index usable for port-keyed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}({:?}/{:?})", self.0, self.link(), self.direction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_packing_roundtrip() {
        for raw in 0..64u32 {
            let link = LinkId(raw);
            for dir in [Direction::Forward, Direction::Reverse] {
                let ch = ChannelId::new(link, dir);
                assert_eq!(ch.link(), link);
                assert_eq!(ch.direction(), dir);
            }
        }
    }

    #[test]
    fn channel_reverse_is_involution() {
        let ch = ChannelId::new(LinkId(7), Direction::Forward);
        assert_eq!(ch.reverse().reverse(), ch);
        assert_eq!(ch.reverse().link(), ch.link());
        assert_ne!(ch.reverse().direction(), ch.direction());
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Forward.flip(), Direction::Reverse);
        assert_eq!(Direction::Reverse.flip(), Direction::Forward);
    }

    #[test]
    fn dense_indices_are_contiguous() {
        // Channels of links 0..3 must cover indices 0..6 exactly once.
        let mut seen = [false; 6];
        for l in 0..3u32 {
            for dir in [Direction::Forward, Direction::Reverse] {
                let idx = ChannelId::new(LinkId(l), dir).index();
                assert!(!seen[idx]);
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
