//! Exact minimum hitting set via branch and bound.
//!
//! The deadlock layer needs the smallest set of *turns* that touches
//! every enumerated channel-dependency cycle — a minimum hitting set
//! over small set systems (tens of sets, each a handful of elements).
//! At that scale the problem is exactly solvable: this module provides
//! a deterministic branch-and-bound solver seeded with the greedy
//! upper bound and pruned by a disjoint-set packing bound (a feasible
//! solution to the dual of the covering LP, hence a valid lower
//! bound), plus the greedy heuristic and the packing bound themselves
//! as standalone functions.
//!
//! Everything is generic over the element type so the same machinery
//! serves turn pairs `(u32, u32)`, channel ids, or plain integers.

use std::collections::HashMap;
use std::hash::Hash;

/// The outcome of [`min_hitting_set`].
#[derive(Clone, Debug)]
pub struct HittingSetSolution<T> {
    /// The best hitting set found, sorted for determinism. Hits every
    /// input set; minimum-cardinality when `proven_minimal`.
    pub chosen: Vec<T>,
    /// Whether the search space was exhausted, proving `chosen` is a
    /// true minimum (always check this before claiming minimality).
    pub proven_minimal: bool,
    /// A proven lower bound on any hitting set's size (disjoint-set
    /// packing — each packed set needs its own element).
    pub lower_bound: usize,
    /// Branch-and-bound nodes expanded (diagnostic; compare against
    /// the budget to see how close the search came to exhaustion).
    pub nodes_explored: usize,
}

/// Greedy hitting set: repeatedly pick the element present in the most
/// still-unhit sets (ties broken toward the smallest element, so the
/// result is deterministic). Not guaranteed minimum; used as the
/// branch-and-bound upper bound and as the fallback when the exact
/// search exceeds its budget.
pub fn greedy_hitting_set<T: Copy + Eq + Hash + Ord>(sets: &[Vec<T>]) -> Vec<T> {
    let mut alive: Vec<&Vec<T>> = sets.iter().filter(|s| !s.is_empty()).collect();
    let mut chosen = Vec::new();
    while !alive.is_empty() {
        let mut counts: HashMap<T, usize> = HashMap::new();
        for s in &alive {
            for &e in *s {
                *counts.entry(e).or_insert(0) += 1;
            }
        }
        let &best = counts
            .iter()
            .max_by_key(|&(e, n)| (*n, std::cmp::Reverse(*e)))
            .map(|(e, _)| e)
            .expect("alive sets are non-empty");
        chosen.push(best);
        alive.retain(|s| !s.contains(&best));
    }
    chosen.sort_unstable();
    chosen
}

/// A lower bound on any hitting set: the size of a greedily packed
/// family of pairwise element-disjoint sets (each needs a distinct
/// hitter). Equivalently, the value of a feasible 0/1 solution to the
/// dual of the fractional covering LP.
pub fn packing_lower_bound<T: Copy + Eq + Hash + Ord>(sets: &[Vec<T>]) -> usize {
    // Smallest sets first: small sets are the hardest to keep disjoint,
    // so packing them early packs more overall.
    let mut order: Vec<&Vec<T>> = sets.iter().filter(|s| !s.is_empty()).collect();
    order.sort_by_key(|s| (s.len(), s.first().copied()));
    let mut used: std::collections::HashSet<T> = std::collections::HashSet::new();
    let mut packed = 0;
    for s in order {
        if s.iter().all(|e| !used.contains(e)) {
            used.extend(s.iter().copied());
            packed += 1;
        }
    }
    packed
}

/// Exact minimum hitting set by branch and bound, up to `max_nodes`
/// search nodes.
///
/// Empty input sets are ignored (they cannot be hit). The search
/// branches on the elements of the smallest unhit set (every hitting
/// set must contain one of them, so the branching is complete), prunes
/// with the packing bound on the remaining unhit sets, and is seeded
/// with [`greedy_hitting_set`] as the initial incumbent. When the node
/// budget runs out the incumbent so far is returned with
/// `proven_minimal == false` — still a valid hitting set, no worse
/// than greedy.
pub fn min_hitting_set<T: Copy + Eq + Hash + Ord>(
    sets: &[Vec<T>],
    max_nodes: usize,
) -> HittingSetSolution<T> {
    // Deduplicate and drop dominated sets: if A ⊆ B, hitting A hits B.
    let mut work: Vec<Vec<T>> = Vec::new();
    for s in sets {
        if s.is_empty() {
            continue;
        }
        let mut s: Vec<T> = s.clone();
        s.sort_unstable();
        s.dedup();
        work.push(s);
    }
    work.sort_by_key(|s| s.len());
    work.dedup();
    let mut kept: Vec<Vec<T>> = Vec::new();
    'outer: for s in work {
        for k in &kept {
            if k.iter().all(|e| s.binary_search(e).is_ok()) {
                continue 'outer; // s ⊇ k: dominated
            }
        }
        kept.push(s);
    }

    let global_lb = packing_lower_bound(&kept);
    let mut best = greedy_hitting_set(&kept);
    if best.len() == global_lb {
        return HittingSetSolution {
            chosen: best,
            proven_minimal: true,
            lower_bound: global_lb,
            nodes_explored: 0,
        };
    }

    struct Search<T> {
        sets: Vec<Vec<T>>,
        best: Vec<T>,
        nodes: usize,
        max_nodes: usize,
        exhausted: bool,
    }

    impl<T: Copy + Eq + Hash + Ord> Search<T> {
        fn dfs(&mut self, chosen: &mut Vec<T>, unhit: &[usize]) {
            self.nodes += 1;
            if self.nodes > self.max_nodes {
                self.exhausted = false;
                return;
            }
            if unhit.is_empty() {
                if chosen.len() < self.best.len() {
                    self.best = chosen.clone();
                    self.best.sort_unstable();
                }
                return;
            }
            let remaining: Vec<Vec<T>> = unhit.iter().map(|&i| self.sets[i].clone()).collect();
            if chosen.len() + packing_lower_bound(&remaining) >= self.best.len() {
                return; // cannot beat the incumbent
            }
            // Branch on the smallest unhit set: any hitting set must
            // contain at least one of its elements.
            let &pivot = unhit
                .iter()
                .min_by_key(|&&i| (self.sets[i].len(), i))
                .expect("unhit is non-empty");
            let elements = self.sets[pivot].clone();
            for e in elements {
                chosen.push(e);
                let next: Vec<usize> = unhit
                    .iter()
                    .copied()
                    .filter(|&i| !self.sets[i].contains(&e))
                    .collect();
                self.dfs(chosen, &next);
                chosen.pop();
                if self.nodes > self.max_nodes {
                    return;
                }
            }
        }
    }

    let all: Vec<usize> = (0..kept.len()).collect();
    let mut search = Search {
        sets: kept,
        best: std::mem::take(&mut best),
        nodes: 0,
        max_nodes,
        exhausted: true,
    };
    search.dfs(&mut Vec::new(), &all);
    let proven = search.exhausted || search.best.len() == global_lb;
    HittingSetSolution {
        chosen: search.best,
        proven_minimal: proven,
        lower_bound: global_lb,
        nodes_explored: search.nodes,
    }
    .tighten()
}

impl<T> HittingSetSolution<T> {
    /// When the search proved minimality, the solution size itself is
    /// the best possible lower bound.
    fn tighten(mut self) -> Self {
        if self.proven_minimal {
            self.lower_bound = self.chosen.len();
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits<T: Copy + Eq>(chosen: &[T], sets: &[Vec<T>]) -> bool {
        sets.iter()
            .filter(|s| !s.is_empty())
            .all(|s| s.iter().any(|e| chosen.contains(e)))
    }

    /// Smallest hitting set by brute force over the element universe.
    fn brute_min<T: Copy + Eq + Hash + Ord>(sets: &[Vec<T>]) -> usize {
        let mut universe: Vec<T> = sets.iter().flatten().copied().collect();
        universe.sort_unstable();
        universe.dedup();
        let n = universe.len();
        assert!(n <= 20, "brute force only for tiny instances");
        let mut best = n;
        for mask in 0u32..(1 << n) {
            let size = mask.count_ones() as usize;
            if size >= best {
                continue;
            }
            let chosen: Vec<T> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| universe[i])
                .collect();
            if hits(&chosen, sets) {
                best = size;
            }
        }
        best
    }

    #[test]
    fn trivial_cases() {
        let empty: Vec<Vec<u32>> = Vec::new();
        let sol = min_hitting_set(&empty, 1000);
        assert!(sol.chosen.is_empty() && sol.proven_minimal);
        let one = vec![vec![3u32, 5]];
        let sol = min_hitting_set(&one, 1000);
        assert_eq!(sol.chosen.len(), 1);
        assert!(sol.proven_minimal);
    }

    #[test]
    fn disjoint_sets_need_one_each() {
        let sets = vec![vec![1u32, 2], vec![3, 4], vec![5, 6]];
        let sol = min_hitting_set(&sets, 10_000);
        assert_eq!(sol.chosen.len(), 3);
        assert!(sol.proven_minimal);
        assert_eq!(sol.lower_bound, 3);
        assert!(hits(&sol.chosen, &sets));
    }

    #[test]
    fn shared_element_beats_greedy_sized_answers() {
        // Greedy can pick 7 first (hits three sets), then needs two
        // more; the optimum is {1, 2} — wait, construct a case where
        // greedy is provably suboptimal: classic tripartite trap.
        let sets = vec![
            vec![1u32, 4],
            vec![1, 5],
            vec![2, 4],
            vec![2, 5],
            vec![3, 4],
            vec![3, 5],
        ];
        // {4, 5} hits everything; greedy-by-count also finds size 2
        // here, but the exact answer must match brute force.
        let sol = min_hitting_set(&sets, 100_000);
        assert!(hits(&sol.chosen, &sets));
        assert!(sol.proven_minimal);
        assert_eq!(sol.chosen.len(), brute_min(&sets));
        assert_eq!(sol.chosen, vec![4, 5]);
    }

    #[test]
    fn dominated_supersets_are_ignored() {
        let sets = vec![vec![1u32], vec![1, 2, 3], vec![2, 9]];
        let sol = min_hitting_set(&sets, 1000);
        assert!(hits(&sol.chosen, &sets));
        assert_eq!(sol.chosen.len(), 2); // {1} forced, plus one of {2,9}
        assert!(sol.proven_minimal);
    }

    #[test]
    fn budget_exhaustion_falls_back_to_greedy_quality() {
        // A grid of overlapping sets with a 1-node budget: the solver
        // must still return a valid hitting set, flagged unproven.
        let sets: Vec<Vec<u32>> = (0..8)
            .map(|i| vec![i, i + 1, (i * 3) % 11, (i * 5) % 13])
            .collect();
        let sol = min_hitting_set(&sets, 1);
        assert!(hits(&sol.chosen, &sets));
        assert!(!sol.proven_minimal);
        let greedy = greedy_hitting_set(&sets);
        assert!(sol.chosen.len() <= greedy.len());
    }

    #[test]
    fn greedy_and_packing_are_consistent() {
        let sets = vec![
            vec![(0u32, 1u32), (1, 2)],
            vec![(1, 2), (2, 3)],
            vec![(4, 5)],
        ];
        let g = greedy_hitting_set(&sets);
        assert!(hits(&g, &sets));
        let lb = packing_lower_bound(&sets);
        assert!(lb <= g.len());
        assert_eq!(lb, 2); // {(1,2)…} family and {(4,5)} are disjoint
    }

    #[test]
    fn deterministic_across_runs() {
        let sets = vec![vec![9u32, 1, 5], vec![5, 2], vec![2, 9], vec![7, 1]];
        let a = min_hitting_set(&sets, 10_000);
        let b = min_hitting_set(&sets, 10_000);
        assert_eq!(a.chosen, b.chosen);
        assert_eq!(a.nodes_explored, b.nodes_explored);
    }
}
