//! A plain directed graph with the cycle-analysis algorithms the
//! deadlock theory needs.
//!
//! Dally & Seitz's theorem (the paper's reference \[6\]) reduces
//! deadlock freedom of a wormhole-routed network to **acyclicity of the
//! channel dependency graph** — a derived directed graph whose vertices
//! are the network's unidirectional channels. [`AdjList`] is that
//! derived graph's representation: dense `u32` vertices, edge lists,
//! Tarjan strongly-connected components, topological sort, and cycle
//! extraction for diagnostics.

/// A directed graph over vertices `0..n` with adjacency lists.
#[derive(Clone, Debug, Default)]
pub struct AdjList {
    edges: Vec<Vec<u32>>,
}

/// Result of a strongly-connected-component decomposition.
#[derive(Clone, Debug)]
pub struct SccResult {
    /// `comp[v]` = component index of vertex `v`. Components are
    /// numbered in **reverse topological order** (a Tarjan property:
    /// every edge goes from a higher-numbered component to a lower or
    /// equal one).
    pub comp: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl SccResult {
    /// Vertices grouped by component.
    pub fn groups(&self) -> Vec<Vec<u32>> {
        let mut g = vec![Vec::new(); self.count];
        for (v, &c) in self.comp.iter().enumerate() {
            g[c as usize].push(v as u32);
        }
        g
    }
}

impl AdjList {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        AdjList {
            edges: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds the directed edge `u → v`. Duplicate edges are kept (they
    /// do not change any of the analyses here).
    #[inline]
    pub fn add_edge(&mut self, u: u32, v: u32) {
        self.edges[u as usize].push(v);
    }

    /// Successors of `u`.
    #[inline]
    pub fn succ(&self, u: u32) -> &[u32] {
        &self.edges[u as usize]
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Tarjan's strongly-connected components (iterative, so channel
    /// graphs of large fractahedrons do not overflow the stack).
    pub fn scc(&self) -> SccResult {
        let n = self.len();
        const UNVISITED: u32 = u32::MAX;
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut comp = vec![0u32; n];
        let mut next_index = 0u32;
        let mut count = 0usize;

        // Explicit DFS frame: (vertex, next child offset).
        let mut frames: Vec<(u32, usize)> = Vec::new();
        for root in 0..n as u32 {
            if index[root as usize] != UNVISITED {
                continue;
            }
            frames.push((root, 0));
            index[root as usize] = next_index;
            low[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;

            while let Some(&mut (v, ref mut child)) = frames.last_mut() {
                if *child < self.edges[v as usize].len() {
                    let w = self.edges[v as usize][*child];
                    *child += 1;
                    if index[w as usize] == UNVISITED {
                        index[w as usize] = next_index;
                        low[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        frames.push((w, 0));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index[w as usize]);
                    }
                } else {
                    frames.pop();
                    if let Some(&mut (parent, _)) = frames.last_mut() {
                        low[parent as usize] = low[parent as usize].min(low[v as usize]);
                    }
                    if low[v as usize] == index[v as usize] {
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp[w as usize] = count as u32;
                            if w == v {
                                break;
                            }
                        }
                        count += 1;
                    }
                }
            }
        }
        SccResult { comp, count }
    }

    /// Whether the graph has no directed cycle. (True iff every SCC is a
    /// single vertex without a self-edge.)
    pub fn is_acyclic(&self) -> bool {
        let scc = self.scc();
        if scc.count != self.len() {
            return false;
        }
        // All SCCs trivial; self-loops remain possible.
        (0..self.len() as u32).all(|v| !self.succ(v).contains(&v))
    }

    /// One directed cycle, as a vertex sequence `v0 → v1 → … → v0`, or
    /// `None` if the graph is acyclic. Used for human-readable deadlock
    /// diagnostics. (Iterative three-colour DFS; a back edge closes the
    /// cycle along the current DFS path.)
    pub fn find_cycle(&self) -> Option<Vec<u32>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let n = self.len();
        let mut color = vec![Color::White; n];
        let mut frames: Vec<(u32, usize)> = Vec::new();

        for root in 0..n as u32 {
            if color[root as usize] != Color::White {
                continue;
            }
            color[root as usize] = Color::Grey;
            frames.push((root, 0));
            while let Some(&mut (v, ref mut child)) = frames.last_mut() {
                if *child < self.edges[v as usize].len() {
                    let w = self.edges[v as usize][*child];
                    *child += 1;
                    match color[w as usize] {
                        Color::White => {
                            color[w as usize] = Color::Grey;
                            frames.push((w, 0));
                        }
                        Color::Grey => {
                            // Back edge v → w: the cycle is the DFS path
                            // from w down to v.
                            let start = frames
                                .iter()
                                .position(|&(u, _)| u == w)
                                .expect("grey vertex must be on the DFS path");
                            return Some(frames[start..].iter().map(|&(u, _)| u).collect());
                        }
                        Color::Black => {}
                    }
                } else {
                    color[v as usize] = Color::Black;
                    frames.pop();
                }
            }
        }
        None
    }

    /// All **elementary cycles** (no repeated vertex), bounded.
    ///
    /// [`Self::find_cycle`] answers "is there a cycle?" with a single
    /// witness; route verification wants the full population so a
    /// diagnostic can say *every* loop a routing configuration closes,
    /// not just the first one the DFS trips over. This is a
    /// Tiernan-style enumeration restricted to one strongly-connected
    /// component at a time: for each start vertex `s`, simple DFS paths
    /// over vertices `> s` inside `s`'s component, recording a cycle
    /// whenever an edge returns to `s`. Each elementary cycle is
    /// reported exactly once, rooted at its minimum vertex.
    ///
    /// Enumeration is *bounded*: it stops after `max_cycles` cycles or
    /// `max_steps` DFS edge expansions, returning `true` as the second
    /// element when the bound was hit (the cycle list is then a
    /// prefix, not the full population). The graph itself is
    /// unmodified; an acyclic graph costs one SCC pass and returns
    /// `(vec![], false)`.
    pub fn elementary_cycles(&self, max_cycles: usize, max_steps: usize) -> (Vec<Vec<u32>>, bool) {
        let n = self.len();
        let scc = self.scc();
        // Component sizes, to skip singleton components quickly
        // (a singleton only matters if it has a self-loop).
        let mut comp_size = vec![0u32; scc.count];
        for &c in &scc.comp {
            comp_size[c as usize] += 1;
        }
        let mut cycles: Vec<Vec<u32>> = Vec::new();
        let mut truncated = false;
        let mut steps = 0usize;
        let mut on_path = vec![false; n];
        for s in 0..n as u32 {
            if cycles.len() >= max_cycles || steps >= max_steps {
                truncated = true;
                break;
            }
            let sc = scc.comp[s as usize];
            if comp_size[sc as usize] == 1 {
                // Singleton component: only a self-loop can cycle.
                if self.succ(s).contains(&s) {
                    cycles.push(vec![s]);
                }
                continue;
            }
            // DFS over simple paths s -> … using vertices > s of the
            // same component; an edge back to s closes a cycle.
            let mut frames: Vec<(u32, usize)> = vec![(s, 0)];
            on_path[s as usize] = true;
            while let Some(&mut (v, ref mut child)) = frames.last_mut() {
                if cycles.len() >= max_cycles || steps >= max_steps {
                    truncated = true;
                    break;
                }
                if *child < self.edges[v as usize].len() {
                    let w = self.edges[v as usize][*child];
                    *child += 1;
                    steps += 1;
                    if w == s {
                        cycles.push(frames.iter().map(|&(u, _)| u).collect());
                    } else if w > s && scc.comp[w as usize] == sc && !on_path[w as usize] {
                        on_path[w as usize] = true;
                        frames.push((w, 0));
                    }
                } else {
                    on_path[v as usize] = false;
                    frames.pop();
                }
            }
            for (v, _) in frames {
                on_path[v as usize] = false;
            }
        }
        (cycles, truncated)
    }

    /// Topological order of the vertices, or `None` if the graph has a
    /// cycle (Kahn's algorithm).
    pub fn topo_sort(&self) -> Option<Vec<u32>> {
        let n = self.len();
        let mut indeg = vec![0u32; n];
        for u in 0..n {
            for &v in &self.edges[u] {
                indeg[v as usize] += 1;
            }
        }
        let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &w in &self.edges[v as usize] {
                indeg[w as usize] -= 1;
                if indeg[w as usize] == 0 {
                    queue.push(w);
                }
            }
        }
        (order.len() == n).then_some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(u32, u32)]) -> AdjList {
        let mut g = AdjList::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    #[test]
    fn empty_graph_is_acyclic() {
        assert!(AdjList::new(0).is_acyclic());
        assert!(AdjList::new(5).is_acyclic());
    }

    #[test]
    fn chain_is_acyclic_with_topo_order() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(g.is_acyclic());
        let order = g.topo_sort().unwrap();
        let pos = |v: u32| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(0) < pos(1) && pos(1) < pos(2) && pos(2) < pos(3));
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn four_cycle_detected() {
        // The Fig 1 deadlock shape: four channels in a ring.
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(!g.is_acyclic());
        assert!(g.topo_sort().is_none());
        let cyc = g.find_cycle().unwrap();
        assert_eq!(cyc.len(), 4);
        // Each consecutive pair (and the wrap-around) is an edge.
        for i in 0..cyc.len() {
            let u = cyc[i];
            let v = cyc[(i + 1) % cyc.len()];
            assert!(g.succ(u).contains(&v), "{u}->{v} not an edge");
        }
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = graph(2, &[(1, 1)]);
        assert!(!g.is_acyclic());
        assert_eq!(g.find_cycle().unwrap(), vec![1]);
    }

    #[test]
    fn scc_decomposition_counts() {
        // Two 2-cycles joined by a bridge, plus an isolated vertex.
        let g = graph(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let scc = g.scc();
        assert_eq!(scc.count, 3);
        assert_eq!(scc.comp[0], scc.comp[1]);
        assert_eq!(scc.comp[2], scc.comp[3]);
        assert_ne!(scc.comp[0], scc.comp[2]);
        let groups = scc.groups();
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 5);
    }

    #[test]
    fn scc_reverse_topological_numbering() {
        // Edges go from higher-numbered components to lower.
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let scc = g.scc();
        for u in 0..4u32 {
            for &v in g.succ(u) {
                assert!(scc.comp[u as usize] >= scc.comp[v as usize]);
            }
        }
    }

    #[test]
    fn duplicate_edges_harmless() {
        let g = graph(2, &[(0, 1), (0, 1), (0, 1)]);
        assert!(g.is_acyclic());
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn elementary_cycles_enumerates_all() {
        // Two vertex-disjoint 2-cycles plus a 3-cycle sharing vertex 0.
        let g = graph(
            7,
            &[
                (0, 1),
                (1, 0),
                (2, 3),
                (3, 2),
                (0, 4),
                (4, 5),
                (5, 0),
                (6, 6),
            ],
        );
        let (cycles, truncated) = g.elementary_cycles(100, 10_000);
        assert!(!truncated);
        let mut lens: Vec<usize> = cycles.iter().map(Vec::len).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![1, 2, 2, 3]);
        // Every reported cycle is a real closed walk of distinct vertices.
        for cyc in &cycles {
            for i in 0..cyc.len() {
                let u = cyc[i];
                let v = cyc[(i + 1) % cyc.len()];
                assert!(g.succ(u).contains(&v), "{u}->{v} not an edge");
            }
            let mut sorted = cyc.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), cyc.len(), "repeated vertex in {cyc:?}");
        }
    }

    #[test]
    fn elementary_cycles_rooted_at_minimum_once() {
        // K3 both ways: cycles are the two 3-cycles and three 2-cycles.
        let g = graph(3, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)]);
        let (cycles, truncated) = g.elementary_cycles(100, 10_000);
        assert!(!truncated);
        assert_eq!(cycles.len(), 5);
        // Each rooted at its minimum vertex.
        for cyc in &cycles {
            assert_eq!(cyc[0], *cyc.iter().min().unwrap());
        }
    }

    #[test]
    fn elementary_cycles_respects_bounds() {
        let g = graph(3, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)]);
        let (cycles, truncated) = g.elementary_cycles(2, 10_000);
        assert!(truncated);
        assert_eq!(cycles.len(), 2);
        let (_, truncated) = g.elementary_cycles(100, 1);
        assert!(truncated);
    }

    #[test]
    fn elementary_cycles_empty_on_dag() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let (cycles, truncated) = g.elementary_cycles(100, 10_000);
        assert!(cycles.is_empty());
        assert!(!truncated);
    }

    #[test]
    fn large_path_does_not_overflow_stack() {
        // 200k-vertex path exercises the iterative Tarjan.
        let n = 200_000;
        let mut g = AdjList::new(n);
        for v in 0..(n as u32 - 1) {
            g.add_edge(v, v + 1);
        }
        assert!(g.is_acyclic());
        assert_eq!(g.scc().count, n);
    }
}
