//! Error type for network construction.

use crate::ids::{NodeId, PortId};
use std::fmt;

/// Errors raised while building or mutating a [`crate::Network`].
///
/// Construction is fallible on purpose: the paper's core constraint is
/// the fixed port budget of the router ASIC ("The first generation of
/// ServerNet is implemented with 6-port routers"), and topology builders
/// must not silently exceed it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// A port index was at or beyond the router's port count.
    PortOutOfRange {
        /// The router whose port was addressed.
        node: NodeId,
        /// The offending port index.
        port: PortId,
        /// How many ports the router actually has.
        capacity: u8,
    },
    /// Two cables were attached to the same port of the same router.
    PortInUse {
        /// The router whose port was double-booked.
        node: NodeId,
        /// The port already carrying a cable.
        port: PortId,
    },
    /// A cable's two ends were attached to the same vertex.
    SelfLoop {
        /// The vertex in question.
        node: NodeId,
    },
    /// An end node (CPU / I/O adapter), which has exactly one implicit
    /// port per fabric, was connected more than once.
    EndNodeInUse {
        /// The end node already attached to a cable.
        node: NodeId,
    },
    /// A [`NodeId`] did not exist in the network.
    NoSuchNode {
        /// The missing id.
        node: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::PortOutOfRange {
                node,
                port,
                capacity,
            } => write!(
                f,
                "port {port:?} out of range on {node} (router has {capacity} ports)"
            ),
            GraphError::PortInUse { node, port } => {
                write!(f, "port {port:?} on {node} already carries a cable")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "cannot cable {node} to itself")
            }
            GraphError::EndNodeInUse { node } => {
                write!(f, "end node {node} is already attached to a router")
            }
            GraphError::NoSuchNode { node } => write!(f, "no such node: {node}"),
        }
    }
}

impl std::error::Error for GraphError {}
