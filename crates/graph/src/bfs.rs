//! Breadth-first distances over a [`Network`].
//!
//! The paper measures latency in **router hops** ("a 16-CPU system may
//! be constructed with a maximum delay between CPUs of four router
//! hops"): the number of routers a packet traverses between two end
//! nodes. For end-node pairs that is `(vertices on the path) − 2`, so
//! we expose both raw vertex distances and the router-hop convention.

use crate::ids::NodeId;
use crate::network::Network;
use std::collections::VecDeque;

/// Distance (in traversed cables) from `src` to every vertex;
/// `u32::MAX` marks unreachable vertices.
pub fn distances(net: &Network, src: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; net.node_count()];
    let mut queue = VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for &(_, w) in net.channels_from(v) {
            if dist[w.index()] == u32::MAX {
                dist[w.index()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Shortest path from `src` to `dst` as a vertex sequence (inclusive of
/// both ends), or `None` if unreachable. Ties are broken by adjacency
/// order, which in this workspace is deterministic build order.
pub fn shortest_path(net: &Network, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut prev: Vec<Option<NodeId>> = vec![None; net.node_count()];
    let mut seen = vec![false; net.node_count()];
    let mut queue = VecDeque::new();
    seen[src.index()] = true;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        for &(_, w) in net.channels_from(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                prev[w.index()] = Some(v);
                if w == dst {
                    let mut path = vec![dst];
                    let mut cur = dst;
                    while let Some(p) = prev[cur.index()] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(w);
            }
        }
    }
    None
}

/// Number of routers on the shortest path between two **end nodes**
/// (the paper's "router hops"), or `None` if unreachable.
///
/// For end nodes cabled to the same router this is 1; Figure 1's
/// corner-to-corner 6×6-mesh transfer is 11.
pub fn router_hops(net: &Network, src: NodeId, dst: NodeId) -> Option<u32> {
    let path = shortest_path(net, src, dst)?;
    Some(path.iter().filter(|&&v| net.is_router(v)).count() as u32)
}

/// Whether every vertex can reach every other (the network is
/// connected; cables are duplex so directed connectivity equals
/// undirected).
pub fn is_connected(net: &Network) -> bool {
    let n = net.node_count();
    if n == 0 {
        return true;
    }
    let d = distances(net, NodeId(0));
    d.iter().all(|&x| x != u32::MAX)
}

/// Maximum over all end-node pairs of the shortest-path router hops:
/// the paper's "maximum delay". `None` for networks with fewer than two
/// end nodes or with unreachable pairs.
pub fn max_router_hops(net: &Network) -> Option<u32> {
    let ends: Vec<NodeId> = net.end_nodes().collect();
    if ends.len() < 2 {
        return None;
    }
    let mut best = 0u32;
    for &s in &ends {
        let dist = distances(net, s);
        // Hops via distance: path vertices = dist + 1, routers = dist − 1
        // for end-to-end paths (both endpoints are end nodes).
        for &t in &ends {
            if t == s {
                continue;
            }
            let d = dist[t.index()];
            if d == u32::MAX {
                return None;
            }
            best = best.max(d - 1);
        }
    }
    Some(best)
}

/// Mean over all ordered end-node pairs of the shortest-path router
/// hops (the paper's "average hops", Table 2).
pub fn avg_router_hops(net: &Network) -> Option<f64> {
    let ends: Vec<NodeId> = net.end_nodes().collect();
    if ends.len() < 2 {
        return None;
    }
    let mut total = 0u64;
    let mut pairs = 0u64;
    for &s in &ends {
        let dist = distances(net, s);
        for &t in &ends {
            if t == s {
                continue;
            }
            let d = dist[t.index()];
            if d == u32::MAX {
                return None;
            }
            total += u64::from(d - 1);
            pairs += 1;
        }
    }
    Some(total as f64 / pairs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LinkClass;

    /// A path of `n` routers with one end node on each extreme router.
    fn router_path(n: usize) -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let routers: Vec<NodeId> = (0..n).map(|i| net.add_router(format!("r{i}"), 6)).collect();
        for w in routers.windows(2) {
            net.connect_any(w[0], w[1], LinkClass::Local).unwrap();
        }
        let a = net.add_end_node("a");
        let b = net.add_end_node("b");
        net.connect_any(routers[0], a, LinkClass::Attach).unwrap();
        net.connect_any(routers[n - 1], b, LinkClass::Attach)
            .unwrap();
        (net, a, b)
    }

    #[test]
    fn distances_on_path() {
        let (net, a, b) = router_path(4);
        let d = distances(&net, a);
        assert_eq!(d[b.index()], 5); // a -r0-r1-r2-r3- b
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let (net, a, b) = router_path(3);
        let p = shortest_path(&net, a, b).unwrap();
        assert_eq!(p.first(), Some(&a));
        assert_eq!(p.last(), Some(&b));
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn router_hops_counts_routers_only() {
        let (net, a, b) = router_path(3);
        assert_eq!(router_hops(&net, a, b), Some(3));
    }

    #[test]
    fn same_router_pair_is_one_hop() {
        let mut net = Network::new();
        let r = net.add_router("r", 6);
        let a = net.add_end_node("a");
        let b = net.add_end_node("b");
        net.connect_any(r, a, LinkClass::Attach).unwrap();
        net.connect_any(r, b, LinkClass::Attach).unwrap();
        assert_eq!(router_hops(&net, a, b), Some(1));
        assert_eq!(max_router_hops(&net), Some(1));
        assert_eq!(avg_router_hops(&net), Some(1.0));
    }

    #[test]
    fn disconnected_detected() {
        let mut net = Network::new();
        net.add_router("r0", 6);
        net.add_router("r1", 6);
        assert!(!is_connected(&net));
        let d = distances(&net, NodeId(0));
        assert_eq!(d[1], u32::MAX);
        assert!(shortest_path(&net, NodeId(0), NodeId(1)).is_none());
    }

    #[test]
    fn connected_detected() {
        let (net, _, _) = router_path(5);
        assert!(is_connected(&net));
    }

    #[test]
    fn max_and_avg_hops_on_path() {
        let (net, _, _) = router_path(4);
        assert_eq!(max_router_hops(&net), Some(4));
        assert_eq!(avg_router_hops(&net), Some(4.0));
    }

    #[test]
    fn trivial_path_to_self() {
        let (net, a, _) = router_path(2);
        assert_eq!(shortest_path(&net, a, a), Some(vec![a]));
    }
}
