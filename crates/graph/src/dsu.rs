//! Union-find (disjoint sets), used for connectivity accounting in
//! topology builders and fault-injection experiments (how many
//! partitions does a failed fabric split into?).

/// Disjoint-set forest with path halving and union by size.
#[derive(Clone, Debug)]
pub struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl DisjointSets {
    /// `n` singleton sets `0..n`.
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of distinct sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut d = DisjointSets::new(4);
        assert_eq!(d.set_count(), 4);
        assert!(!d.connected(0, 1));
        assert_eq!(d.set_size(2), 1);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut d = DisjointSets::new(5);
        assert!(d.union(0, 1));
        assert!(d.union(1, 2));
        assert!(!d.union(0, 2), "already merged");
        assert_eq!(d.set_count(), 3);
        assert!(d.connected(0, 2));
        assert!(!d.connected(0, 3));
        assert_eq!(d.set_size(1), 3);
    }

    #[test]
    fn full_merge() {
        let mut d = DisjointSets::new(100);
        for i in 0..99 {
            d.union(i, i + 1);
        }
        assert_eq!(d.set_count(), 1);
        assert!(d.connected(0, 99));
        assert_eq!(d.set_size(50), 100);
    }
}
