//! The port-aware network representation.
//!
//! A [`Network`] models a ServerNet-style fabric: **routers** with a
//! fixed number of ports (6 on the first-generation ServerNet ASIC),
//! **end nodes** (CPUs and I/O adapters), and full-duplex **cables**
//! attached to specific ports. Ports are a hard budget — attaching a
//! cable to a port that is out of range or already occupied is an error,
//! because the paper's entire §3 comparison is about what can be built
//! "given a specific router whose design has been driven by technology
//! constraints".

use crate::error::GraphError;
use crate::ids::{ChannelId, Direction, LinkId, NodeId, PortId};

/// What a vertex is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// A packet switch (ServerNet router ASIC) with `ports` ports.
    Router {
        /// Number of ports on the ASIC (6 for first-generation ServerNet).
        ports: u8,
    },
    /// An end node: a CPU or peripheral adapter. End nodes have `ports`
    /// network attachments (1 for a single fabric; 2 for the dual-ported
    /// nodes used by paired fabrics).
    EndNode {
        /// Number of network attachments.
        ports: u8,
    },
}

impl NodeKind {
    /// Port budget of this vertex.
    #[inline]
    pub fn ports(&self) -> u8 {
        match *self {
            NodeKind::Router { ports } | NodeKind::EndNode { ports } => ports,
        }
    }

    /// Whether this vertex is a router.
    #[inline]
    pub fn is_router(&self) -> bool {
        matches!(self, NodeKind::Router { .. })
    }
}

/// Per-vertex record.
#[derive(Clone, Debug)]
pub struct NodeInfo {
    /// Router or end node, with its port budget.
    pub kind: NodeKind,
    /// Human-readable name used by experiment printouts and tests
    /// (e.g. `"L1T3.R2"` for router 2 of level-1 tetrahedron 3).
    pub label: String,
}

/// Role of a cable inside the topology that created it.
///
/// The paper's metrics distinguish link populations: Fig 3 quotes
/// contention on "the inter-router links", and the fractahedral
/// constructions distinguish intra-tetrahedron links from inter-level
/// links. Builders tag each cable so the metrics crate can slice
/// per-class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Router ↔ end node attachment.
    Attach,
    /// Router ↔ router within one stage / cluster / tetrahedron.
    Local,
    /// Router ↔ router crossing from level `k` up to level `k + 1`
    /// (levels as in the paper's fractahedron and fat-tree figures,
    /// counting the lowest router stage as level 1).
    Level(u8),
}

/// Per-cable record. `a` and `b` are the two attachment points; the
/// [`Direction::Forward`] channel travels `a → b`.
#[derive(Clone, Debug)]
pub struct LinkInfo {
    /// First endpoint.
    pub a: (NodeId, PortId),
    /// Second endpoint.
    pub b: (NodeId, PortId),
    /// Topological role of the cable.
    pub class: LinkClass,
}

/// A port-aware undirected multigraph of routers, end nodes and
/// full-duplex cables. See the [module docs](self).
///
/// ```
/// use fractanet_graph::{LinkClass, Network, PortId};
///
/// let mut net = Network::new();
/// let a = net.add_router("a", 6);
/// let b = net.add_router("b", 6);
/// let cpu = net.add_end_node("cpu0");
/// net.connect(a, PortId(0), b, PortId(0), LinkClass::Local).unwrap();
/// net.connect_any(a, cpu, LinkClass::Attach).unwrap();
/// assert_eq!(net.router_count(), 2);
/// assert_eq!(net.free_ports(a), 4);
/// // Port 0 is taken on both routers now:
/// assert!(net.connect(a, PortId(0), b, PortId(1), LinkClass::Local).is_err());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Network {
    nodes: Vec<NodeInfo>,
    links: Vec<LinkInfo>,
    /// `ports[v][p]` = the cable occupying port `p` of vertex `v`.
    ports: Vec<Vec<Option<LinkId>>>,
    /// Outgoing channels per vertex: `(channel, far end)`.
    adj: Vec<Vec<(ChannelId, NodeId)>>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a router with `ports` ports. Returns its id.
    pub fn add_router(&mut self, label: impl Into<String>, ports: u8) -> NodeId {
        self.push_node(NodeInfo {
            kind: NodeKind::Router { ports },
            label: label.into(),
        })
    }

    /// Adds a single-ported end node (CPU or I/O adapter). Returns its id.
    pub fn add_end_node(&mut self, label: impl Into<String>) -> NodeId {
        self.add_end_node_with_ports(label, 1)
    }

    /// Adds an end node with `ports` network attachments (2 for the
    /// dual-ported nodes of a paired fabric).
    pub fn add_end_node_with_ports(&mut self, label: impl Into<String>, ports: u8) -> NodeId {
        self.push_node(NodeInfo {
            kind: NodeKind::EndNode { ports },
            label: label.into(),
        })
    }

    fn push_node(&mut self, info: NodeInfo) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.ports.push(vec![None; info.kind.ports() as usize]);
        self.adj.push(Vec::new());
        self.nodes.push(info);
        id
    }

    /// Cables port `pa` of `a` to port `pb` of `b`. Fails if either port
    /// is out of range or occupied, or if `a == b`.
    pub fn connect(
        &mut self,
        a: NodeId,
        pa: PortId,
        b: NodeId,
        pb: PortId,
        class: LinkClass,
    ) -> Result<LinkId, GraphError> {
        self.check_port_free(a, pa)?;
        self.check_port_free(b, pb)?;
        if a == b {
            return Err(GraphError::SelfLoop { node: a });
        }
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkInfo {
            a: (a, pa),
            b: (b, pb),
            class,
        });
        self.ports[a.index()][pa.index()] = Some(id);
        self.ports[b.index()][pb.index()] = Some(id);
        self.adj[a.index()].push((ChannelId::new(id, Direction::Forward), b));
        self.adj[b.index()].push((ChannelId::new(id, Direction::Reverse), a));
        Ok(id)
    }

    /// Cables `a` to `b` using the lowest-numbered free port on each
    /// side. Fails if either vertex has no free port.
    pub fn connect_any(
        &mut self,
        a: NodeId,
        b: NodeId,
        class: LinkClass,
    ) -> Result<LinkId, GraphError> {
        let pa = self.first_free_port(a)?;
        let pb = self.first_free_port(b)?;
        self.connect(a, pa, b, pb, class)
    }

    fn check_port_free(&self, node: NodeId, port: PortId) -> Result<(), GraphError> {
        let info = self.node_checked(node)?;
        let cap = info.kind.ports();
        if port.0 >= cap {
            return Err(GraphError::PortOutOfRange {
                node,
                port,
                capacity: cap,
            });
        }
        if self.ports[node.index()][port.index()].is_some() {
            if info.kind.is_router() {
                return Err(GraphError::PortInUse { node, port });
            }
            return Err(GraphError::EndNodeInUse { node });
        }
        Ok(())
    }

    fn node_checked(&self, node: NodeId) -> Result<&NodeInfo, GraphError> {
        self.nodes
            .get(node.index())
            .ok_or(GraphError::NoSuchNode { node })
    }

    /// Lowest-numbered free port of `node`, or an error if all ports are
    /// occupied.
    pub fn first_free_port(&self, node: NodeId) -> Result<PortId, GraphError> {
        let info = self.node_checked(node)?;
        for p in 0..info.kind.ports() {
            if self.ports[node.index()][p as usize].is_none() {
                return Ok(PortId(p));
            }
        }
        // Reuse PortInUse/EndNodeInUse shapes for "no free port".
        if info.kind.is_router() {
            Err(GraphError::PortInUse {
                node,
                port: PortId(info.kind.ports().saturating_sub(1)),
            })
        } else {
            Err(GraphError::EndNodeInUse { node })
        }
    }

    /// Number of vertices (routers + end nodes).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of full-duplex cables.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of unidirectional channels (`2 × link_count`).
    #[inline]
    pub fn channel_count(&self) -> usize {
        self.links.len() * 2
    }

    /// All vertex ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Ids of all routers.
    pub fn routers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&n| self.kind(n).is_router())
    }

    /// Ids of all end nodes.
    pub fn end_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&n| !self.kind(n).is_router())
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        self.routers().count()
    }

    /// Number of end nodes.
    pub fn end_node_count(&self) -> usize {
        self.end_nodes().count()
    }

    /// The kind of `node`. Panics if out of range.
    #[inline]
    pub fn kind(&self, node: NodeId) -> &NodeKind {
        &self.nodes[node.index()].kind
    }

    /// The label of `node`. Panics if out of range.
    #[inline]
    pub fn label(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].label
    }

    /// Whether `node` is a router.
    #[inline]
    pub fn is_router(&self, node: NodeId) -> bool {
        self.kind(node).is_router()
    }

    /// The cable record for `link`. Panics if out of range.
    #[inline]
    pub fn link(&self, link: LinkId) -> &LinkInfo {
        &self.links[link.index()]
    }

    /// All cable ids.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// All unidirectional channel ids.
    pub fn channels(&self) -> impl Iterator<Item = ChannelId> + '_ {
        (0..self.channel_count() as u32).map(ChannelId)
    }

    /// Vertex a channel leaves from.
    #[inline]
    pub fn channel_src(&self, ch: ChannelId) -> NodeId {
        let l = self.link(ch.link());
        match ch.direction() {
            Direction::Forward => l.a.0,
            Direction::Reverse => l.b.0,
        }
    }

    /// Vertex a channel arrives at.
    #[inline]
    pub fn channel_dst(&self, ch: ChannelId) -> NodeId {
        let l = self.link(ch.link());
        match ch.direction() {
            Direction::Forward => l.b.0,
            Direction::Reverse => l.a.0,
        }
    }

    /// The output port a channel leaves through (on
    /// [`Self::channel_src`]).
    #[inline]
    pub fn channel_src_port(&self, ch: ChannelId) -> PortId {
        let l = self.link(ch.link());
        match ch.direction() {
            Direction::Forward => l.a.1,
            Direction::Reverse => l.b.1,
        }
    }

    /// The input port a channel arrives on (on [`Self::channel_dst`]).
    #[inline]
    pub fn channel_dst_port(&self, ch: ChannelId) -> PortId {
        let l = self.link(ch.link());
        match ch.direction() {
            Direction::Forward => l.b.1,
            Direction::Reverse => l.a.1,
        }
    }

    /// Outgoing channels of `node` as `(channel, far end)` pairs, in
    /// attachment order.
    #[inline]
    pub fn channels_from(&self, node: NodeId) -> &[(ChannelId, NodeId)] {
        &self.adj[node.index()]
    }

    /// Neighbours of `node` (one entry per cable; may repeat for
    /// parallel cables).
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[node.index()].iter().map(|&(_, n)| n)
    }

    /// Number of cables attached to `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj[node.index()].len()
    }

    /// Number of unoccupied ports on `node`.
    pub fn free_ports(&self, node: NodeId) -> usize {
        self.ports[node.index()]
            .iter()
            .filter(|s| s.is_none())
            .count()
    }

    /// The cable occupying `port` of `node`, if any.
    pub fn link_at(&self, node: NodeId, port: PortId) -> Option<LinkId> {
        self.ports[node.index()]
            .get(port.index())
            .copied()
            .flatten()
    }

    /// The outgoing channel of `node` through `port`, if a cable is
    /// attached there.
    pub fn channel_out(&self, node: NodeId, port: PortId) -> Option<ChannelId> {
        let link = self.link_at(node, port)?;
        let info = self.link(link);
        let dir = if info.a == (node, port) {
            Direction::Forward
        } else {
            Direction::Reverse
        };
        Some(ChannelId::new(link, dir))
    }

    /// First channel from `a` directly to `b`, if the two are cabled.
    pub fn channel_between(&self, a: NodeId, b: NodeId) -> Option<ChannelId> {
        self.adj[a.index()]
            .iter()
            .find(|&&(_, n)| n == b)
            .map(|&(ch, _)| ch)
    }

    /// Checks internal invariants; used by property tests. Returns a
    /// description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for (i, l) in self.links.iter().enumerate() {
            let id = LinkId(i as u32);
            for &(n, p) in [&l.a, &l.b] {
                if n.index() >= self.nodes.len() {
                    return Err(format!("{id:?}: endpoint {n} out of range"));
                }
                if self.ports[n.index()].get(p.index()) != Some(&Some(id)) {
                    return Err(format!("{id:?}: port table disagrees at {n}/{p:?}"));
                }
            }
            if l.a.0 == l.b.0 {
                return Err(format!("{id:?}: self loop at {}", l.a.0));
            }
        }
        for v in self.nodes() {
            let occupied = self.ports[v.index()].iter().filter(|s| s.is_some()).count();
            if occupied != self.degree(v) {
                return Err(format!(
                    "{v}: degree {} != occupied ports {occupied}",
                    self.degree(v)
                ));
            }
            for &(ch, far) in self.channels_from(v) {
                if self.channel_src(ch) != v || self.channel_dst(ch) != far {
                    return Err(format!("{v}: adjacency entry {ch:?} inconsistent"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_routers() -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_router("a", 6);
        let b = net.add_router("b", 6);
        (net, a, b)
    }

    #[test]
    fn connect_assigns_ports_and_channels() {
        let (mut net, a, b) = two_routers();
        let l = net
            .connect(a, PortId(2), b, PortId(5), LinkClass::Local)
            .unwrap();
        assert_eq!(net.link_count(), 1);
        assert_eq!(net.channel_count(), 2);
        let fwd = ChannelId::new(l, Direction::Forward);
        assert_eq!(net.channel_src(fwd), a);
        assert_eq!(net.channel_dst(fwd), b);
        assert_eq!(net.channel_src(fwd.reverse()), b);
        assert_eq!(net.channel_src_port(fwd), PortId(2));
        assert_eq!(net.channel_dst_port(fwd), PortId(5));
        assert_eq!(net.link_at(a, PortId(2)), Some(l));
        assert_eq!(net.free_ports(a), 5);
        net.validate().unwrap();
    }

    #[test]
    fn port_reuse_rejected() {
        let (mut net, a, b) = two_routers();
        net.connect(a, PortId(0), b, PortId(0), LinkClass::Local)
            .unwrap();
        let err = net
            .connect(a, PortId(0), b, PortId(1), LinkClass::Local)
            .unwrap_err();
        assert_eq!(
            err,
            GraphError::PortInUse {
                node: a,
                port: PortId(0)
            }
        );
    }

    #[test]
    fn port_out_of_range_rejected() {
        let (mut net, a, b) = two_routers();
        let err = net
            .connect(a, PortId(6), b, PortId(0), LinkClass::Local)
            .unwrap_err();
        assert_eq!(
            err,
            GraphError::PortOutOfRange {
                node: a,
                port: PortId(6),
                capacity: 6
            }
        );
    }

    #[test]
    fn self_loop_rejected() {
        let (mut net, a, _) = two_routers();
        let err = net
            .connect(a, PortId(0), a, PortId(1), LinkClass::Local)
            .unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: a });
    }

    #[test]
    fn end_node_single_attachment() {
        let mut net = Network::new();
        let r = net.add_router("r", 6);
        let n = net.add_end_node("cpu0");
        net.connect_any(r, n, LinkClass::Attach).unwrap();
        let err = net.connect_any(r, n, LinkClass::Attach).unwrap_err();
        assert_eq!(err, GraphError::EndNodeInUse { node: n });
    }

    #[test]
    fn dual_ported_end_node_allows_two_fabrics() {
        let mut net = Network::new();
        let rx = net.add_router("x", 6);
        let ry = net.add_router("y", 6);
        let n = net.add_end_node_with_ports("cpu0", 2);
        net.connect_any(rx, n, LinkClass::Attach).unwrap();
        net.connect_any(ry, n, LinkClass::Attach).unwrap();
        assert_eq!(net.degree(n), 2);
    }

    #[test]
    fn connect_any_fills_ports_in_order() {
        let (mut net, a, b) = two_routers();
        for i in 0..6u8 {
            let l = net.connect_any(a, b, LinkClass::Local).unwrap();
            assert_eq!(net.link(l).a.1, PortId(i));
        }
        assert!(net.connect_any(a, b, LinkClass::Local).is_err());
        assert_eq!(net.degree(a), 6);
        net.validate().unwrap();
    }

    #[test]
    fn channel_between_finds_direct_cable() {
        let (mut net, a, b) = two_routers();
        assert!(net.channel_between(a, b).is_none());
        net.connect_any(a, b, LinkClass::Local).unwrap();
        let ch = net.channel_between(a, b).unwrap();
        assert_eq!(net.channel_src(ch), a);
        assert_eq!(net.channel_dst(ch), b);
    }

    #[test]
    fn channel_out_matches_port() {
        let (mut net, a, b) = two_routers();
        net.connect(a, PortId(3), b, PortId(1), LinkClass::Local)
            .unwrap();
        let ch = net.channel_out(a, PortId(3)).unwrap();
        assert_eq!(net.channel_dst(ch), b);
        assert!(net.channel_out(a, PortId(0)).is_none());
        // From b's side the same cable is the Reverse channel.
        let chb = net.channel_out(b, PortId(1)).unwrap();
        assert_eq!(chb, ch.reverse());
    }

    #[test]
    fn router_and_end_node_counts() {
        let mut net = Network::new();
        net.add_router("r0", 6);
        net.add_router("r1", 4);
        net.add_end_node("n0");
        assert_eq!(net.router_count(), 2);
        assert_eq!(net.end_node_count(), 1);
        assert_eq!(net.node_count(), 3);
    }
}
