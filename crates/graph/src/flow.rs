//! Dinic max-flow, used to compute **bisection bandwidth**.
//!
//! "Bandwidth in MPP systems is often measured in terms of bisection
//! bandwidth, the total traffic that can flow between halves of the
//! system when cut at its weakest point" (paper, §2). With unit-capacity
//! links, the minimum cut separating two node halves equals the maximum
//! flow between them (max-flow/min-cut), which Dinic computes in
//! O(E·√V) on unit networks — far more than fast enough for the
//! paper's 64–1024-node configurations.

/// A max-flow problem instance over vertices `0..n`.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    n: usize,
    // Edge arrays: to[e], cap[e]; edge e^1 is the residual of e.
    to: Vec<u32>,
    cap: Vec<u64>,
    head: Vec<Vec<u32>>,
}

impl FlowNetwork {
    /// Creates an instance with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            n,
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the instance has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds a directed edge `u → v` with capacity `cap` (and its
    /// zero-capacity residual). Returns the edge id.
    pub fn add_edge(&mut self, u: u32, v: u32, cap: u64) -> u32 {
        let id = self.to.len() as u32;
        self.to.push(v);
        self.cap.push(cap);
        self.head[u as usize].push(id);
        self.to.push(u);
        self.cap.push(0);
        self.head[v as usize].push(id + 1);
        id
    }

    /// Adds `u ↔ v` with capacity `cap` each way (a duplex cable).
    pub fn add_duplex(&mut self, u: u32, v: u32, cap: u64) {
        // Two antiparallel edges; each gets its own residual.
        self.add_edge(u, v, cap);
        self.add_edge(v, u, cap);
    }

    /// Computes the maximum `s → t` flow, consuming the residual state.
    /// Call on a fresh/cloned instance per query.
    pub fn max_flow(&mut self, s: u32, t: u32) -> u64 {
        assert_ne!(s, t, "source and sink must differ");
        let mut flow = 0u64;
        let mut level = vec![-1i32; self.n];
        let mut iter = vec![0usize; self.n];
        loop {
            // BFS level graph.
            for l in level.iter_mut() {
                *l = -1;
            }
            level[s as usize] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                for &e in &self.head[v as usize] {
                    let w = self.to[e as usize];
                    if self.cap[e as usize] > 0 && level[w as usize] < 0 {
                        level[w as usize] = level[v as usize] + 1;
                        queue.push_back(w);
                    }
                }
            }
            if level[t as usize] < 0 {
                return flow;
            }
            for it in iter.iter_mut() {
                *it = 0;
            }
            // Blocking flow by iterative DFS.
            loop {
                let pushed = self.dfs_push(s, t, u64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
    }

    fn dfs_push(&mut self, s: u32, t: u32, limit: u64, level: &[i32], iter: &mut [usize]) -> u64 {
        // Iterative DFS carrying the path of edge ids.
        let mut path: Vec<u32> = Vec::new();
        let mut v = s;
        loop {
            if v == t {
                // Push the bottleneck along the path.
                let bottleneck = path
                    .iter()
                    .map(|&e| self.cap[e as usize])
                    .min()
                    .unwrap_or(limit);
                for &e in &path {
                    self.cap[e as usize] -= bottleneck;
                    self.cap[(e ^ 1) as usize] += bottleneck;
                }
                return bottleneck;
            }
            let mut advanced = false;
            while iter[v as usize] < self.head[v as usize].len() {
                let e = self.head[v as usize][iter[v as usize]];
                let w = self.to[e as usize];
                if self.cap[e as usize] > 0 && level[w as usize] == level[v as usize] + 1 {
                    path.push(e);
                    v = w;
                    advanced = true;
                    break;
                }
                iter[v as usize] += 1;
            }
            if !advanced {
                if v == s {
                    return 0;
                }
                // Dead end: retreat and skip the edge we came in on.
                let e = path.pop().expect("path non-empty when retreating");
                let prev = self.to[(e ^ 1) as usize];
                iter[prev as usize] += 1;
                v = prev;
            }
        }
    }

    /// Max-flow from a **set** of sources to a set of sinks: adds a
    /// super-source/super-sink with infinite capacity and runs
    /// [`Self::max_flow`]. Consumes the instance.
    pub fn max_flow_multi(mut self, sources: &[u32], sinks: &[u32]) -> u64 {
        let s = self.n as u32;
        let t = s + 1;
        self.n += 2;
        self.head.push(Vec::new());
        self.head.push(Vec::new());
        for &src in sources {
            let id = self.to.len() as u32;
            self.to.push(src);
            self.cap.push(u64::MAX / 4);
            self.head[s as usize].push(id);
            self.to.push(s);
            self.cap.push(0);
            self.head[src as usize].push(id + 1);
        }
        for &snk in sinks {
            let id = self.to.len() as u32;
            self.to.push(t);
            self.cap.push(u64::MAX / 4);
            self.head[snk as usize].push(id);
            self.to.push(snk);
            self.cap.push(0);
            self.head[t as usize].push(id + 1);
        }
        self.max_flow(s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut f = FlowNetwork::new(2);
        f.add_edge(0, 1, 5);
        assert_eq!(f.max_flow(0, 1), 5);
    }

    #[test]
    fn series_takes_minimum() {
        let mut f = FlowNetwork::new(3);
        f.add_edge(0, 1, 5);
        f.add_edge(1, 2, 3);
        assert_eq!(f.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 2);
        f.add_edge(1, 3, 2);
        f.add_edge(0, 2, 3);
        f.add_edge(2, 3, 3);
        assert_eq!(f.max_flow(0, 3), 5);
    }

    #[test]
    fn classic_augmenting_case() {
        // The textbook diamond where the naive greedy needs the residual
        // edge through the middle.
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 1);
        f.add_edge(0, 2, 1);
        f.add_edge(1, 2, 1);
        f.add_edge(1, 3, 1);
        f.add_edge(2, 3, 1);
        assert_eq!(f.max_flow(0, 3), 2);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 7);
        f.add_edge(2, 3, 7);
        assert_eq!(f.max_flow(0, 3), 0);
    }

    #[test]
    fn duplex_counts_each_direction() {
        let mut f = FlowNetwork::new(2);
        f.add_duplex(0, 1, 4);
        assert_eq!(f.clone().max_flow(0, 1), 4);
        assert_eq!(f.max_flow(1, 0), 4);
    }

    #[test]
    fn multi_source_sink() {
        // Two unit sources feeding one middle vertex feeding two sinks:
        // flow limited by the middle vertex's out-capacity (2).
        let mut f = FlowNetwork::new(5);
        f.add_edge(0, 2, 1);
        f.add_edge(1, 2, 1);
        f.add_edge(2, 3, 1);
        f.add_edge(2, 4, 1);
        assert_eq!(f.max_flow_multi(&[0, 1], &[3, 4]), 2);
    }

    #[test]
    fn ring_bisection_is_two() {
        // A unit-capacity duplex ring of 8: cutting it anywhere severs 2
        // cables, so flow between opposite arcs is 2 per direction...
        // here, a single-commodity s→t flow across the ring is 2.
        let mut f = FlowNetwork::new(8);
        for v in 0..8u32 {
            f.add_duplex(v, (v + 1) % 8, 1);
        }
        assert_eq!(f.max_flow(0, 4), 2);
    }

    #[test]
    fn grid_flow_matches_min_cut() {
        // 3x3 unit grid, corner to corner: min cut is 2.
        let idx = |r: u32, c: u32| r * 3 + c;
        let mut f = FlowNetwork::new(9);
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    f.add_duplex(idx(r, c), idx(r, c + 1), 1);
                }
                if r + 1 < 3 {
                    f.add_duplex(idx(r, c), idx(r + 1, c), 1);
                }
            }
        }
        assert_eq!(f.max_flow(idx(0, 0), idx(2, 2)), 2);
    }
}
