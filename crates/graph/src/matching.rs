//! Hopcroft–Karp maximum bipartite matching, used for the paper's
//! **maximum link contention** metric.
//!
//! §3.1 defines worst-case contention operationally: a set of
//! *simultaneous transfers* — pairwise-distinct sources and
//! pairwise-distinct destinations — all forced through one link
//! ("simultaneous transfers from A1-F6, A2-E6, A3-D6, A4-C6, and
//! A5-B6 … a total of ten transfers may simultaneously try to share the
//! A6 links"). Given the set of (source, destination) pairs whose fixed
//! route crosses a link, the largest such transfer set is exactly a
//! maximum matching between sources and destinations.

use std::collections::VecDeque;

/// A bipartite graph between `left` vertices `0..nl` and `right`
/// vertices `0..nr`.
#[derive(Clone, Debug)]
pub struct Bipartite {
    nl: usize,
    nr: usize,
    adj: Vec<Vec<u32>>,
}

impl Bipartite {
    /// Creates an empty bipartite graph with `nl` left and `nr` right
    /// vertices.
    pub fn new(nl: usize, nr: usize) -> Self {
        Bipartite {
            nl,
            nr,
            adj: vec![Vec::new(); nl],
        }
    }

    /// Adds the edge `left l` — `right r`.
    pub fn add_edge(&mut self, l: u32, r: u32) {
        debug_assert!((l as usize) < self.nl && (r as usize) < self.nr);
        self.adj[l as usize].push(r);
    }

    /// Size of a maximum matching (Hopcroft–Karp, O(E√V)).
    pub fn max_matching(&self) -> usize {
        self.max_matching_pairs().len()
    }

    /// A maximum matching as `(left, right)` pairs.
    pub fn max_matching_pairs(&self) -> Vec<(u32, u32)> {
        const NIL: u32 = u32::MAX;
        let mut match_l = vec![NIL; self.nl];
        let mut match_r = vec![NIL; self.nr];
        let mut dist = vec![0u32; self.nl];

        loop {
            // BFS from all free left vertices.
            let mut queue = VecDeque::new();
            let mut found_augmenting_layer = false;
            for l in 0..self.nl {
                if match_l[l] == NIL {
                    dist[l] = 0;
                    queue.push_back(l as u32);
                } else {
                    dist[l] = u32::MAX;
                }
            }
            let mut free_dist = u32::MAX;
            while let Some(l) = queue.pop_front() {
                if dist[l as usize] >= free_dist {
                    continue;
                }
                for &r in &self.adj[l as usize] {
                    let next = match_r[r as usize];
                    if next == NIL {
                        // Found a free right vertex at this layer.
                        free_dist = free_dist.min(dist[l as usize] + 1);
                        found_augmenting_layer = true;
                    } else if dist[next as usize] == u32::MAX {
                        dist[next as usize] = dist[l as usize] + 1;
                        queue.push_back(next);
                    }
                }
            }
            if !found_augmenting_layer {
                break;
            }
            // DFS phase: vertex-disjoint augmenting paths along layers.
            for l in 0..self.nl as u32 {
                if match_l[l as usize] == NIL {
                    self.try_augment(l, &mut match_l, &mut match_r, &mut dist);
                }
            }
        }

        (0..self.nl as u32)
            .filter(|&l| match_l[l as usize] != NIL)
            .map(|l| (l, match_l[l as usize]))
            .collect()
    }

    fn try_augment(
        &self,
        l: u32,
        match_l: &mut [u32],
        match_r: &mut [u32],
        dist: &mut [u32],
    ) -> bool {
        const NIL: u32 = u32::MAX;
        for &r in &self.adj[l as usize] {
            let next = match_r[r as usize];
            if next == NIL
                || (dist[next as usize] == dist[l as usize] + 1
                    && self.try_augment(next, match_l, match_r, dist))
            {
                match_l[l as usize] = r;
                match_r[r as usize] = l;
                return true;
            }
        }
        dist[l as usize] = u32::MAX;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bip(nl: usize, nr: usize, edges: &[(u32, u32)]) -> Bipartite {
        let mut b = Bipartite::new(nl, nr);
        for &(l, r) in edges {
            b.add_edge(l, r);
        }
        b
    }

    #[test]
    fn empty_graph_matches_zero() {
        assert_eq!(bip(3, 3, &[]).max_matching(), 0);
    }

    #[test]
    fn perfect_matching_on_identity() {
        let edges: Vec<_> = (0..5).map(|i| (i, i)).collect();
        assert_eq!(bip(5, 5, &edges).max_matching(), 5);
    }

    #[test]
    fn star_matches_one() {
        // One source to many destinations: only one simultaneous
        // transfer (sources must be distinct).
        let edges: Vec<_> = (0..6).map(|r| (0, r)).collect();
        assert_eq!(bip(1, 6, &edges).max_matching(), 1);
    }

    #[test]
    fn complete_bipartite_matches_min_side() {
        let mut edges = Vec::new();
        for l in 0..3 {
            for r in 0..7 {
                edges.push((l, r));
            }
        }
        assert_eq!(bip(3, 7, &edges).max_matching(), 3);
        // Transposed.
        let t: Vec<_> = edges.iter().map(|&(l, r)| (r, l)).collect();
        assert_eq!(bip(7, 3, &t).max_matching(), 3);
    }

    #[test]
    fn augmenting_path_required() {
        // l0-r0, l0-r1, l1-r0: greedy l0→r0 blocks l1 unless augmented.
        let b = bip(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        assert_eq!(b.max_matching(), 2);
    }

    #[test]
    fn matching_pairs_are_consistent() {
        let b = bip(
            4,
            4,
            &[(0, 1), (1, 1), (1, 2), (2, 2), (2, 3), (3, 3), (3, 0)],
        );
        let pairs = b.max_matching_pairs();
        assert_eq!(pairs.len(), 4);
        let mut ls: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let mut rs: Vec<u32> = pairs.iter().map(|p| p.1).collect();
        ls.sort_unstable();
        rs.sort_unstable();
        ls.dedup();
        rs.dedup();
        assert_eq!(ls.len(), 4, "left vertices must be distinct");
        assert_eq!(rs.len(), 4, "right vertices must be distinct");
        for &(l, r) in &pairs {
            assert!(b.adj[l as usize].contains(&r));
        }
    }

    #[test]
    fn paper_mesh_corner_example() {
        // §3.1: sources = 12 nodes of column A, destinations = 10 nodes
        // of row 6 columns B..F; every source may pair with every
        // destination → matching = 10 ("a total of ten transfers").
        let mut b = Bipartite::new(12, 10);
        for l in 0..12 {
            for r in 0..10 {
                b.add_edge(l, r);
            }
        }
        assert_eq!(b.max_matching(), 10);
    }
}
