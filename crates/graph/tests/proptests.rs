//! Property-based tests for the graph substrate.

use fractanet_graph::adjlist::AdjList;
use fractanet_graph::flow::FlowNetwork;
use fractanet_graph::hitting::{greedy_hitting_set, min_hitting_set, packing_lower_bound};
use fractanet_graph::matching::Bipartite;
use fractanet_graph::network::{LinkClass, Network};
use fractanet_graph::{bfs, DisjointSets, NodeId};
use proptest::prelude::*;

/// Strategy: a random list of candidate cables over `n` routers.
fn cable_lists(n: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n as u32, 0..n as u32), 0..40)
}

proptest! {
    /// Whatever sequence of connect_any calls succeeds, the network's
    /// internal invariants hold and every attachment is symmetric.
    #[test]
    fn network_invariants_hold(pairs in cable_lists(8)) {
        let mut net = Network::new();
        let routers: Vec<NodeId> = (0..8).map(|i| net.add_router(format!("r{i}"), 6)).collect();
        for (a, b) in pairs {
            // Ignore failures (port exhaustion, self loops): the point is
            // that successes never corrupt state.
            let _ = net.connect_any(routers[a as usize], routers[b as usize], LinkClass::Local);
        }
        prop_assert!(net.validate().is_ok());
        // Degrees match channel lists, and total degree = 2 * links.
        let total: usize = net.nodes().map(|v| net.degree(v)).sum();
        prop_assert_eq!(total, 2 * net.link_count());
    }

    /// BFS distance obeys the triangle inequality over edges and is
    /// symmetric on duplex networks.
    #[test]
    fn bfs_symmetric_and_tight(pairs in cable_lists(8)) {
        let mut net = Network::new();
        let routers: Vec<NodeId> = (0..8).map(|i| net.add_router(format!("r{i}"), 7)).collect();
        for (a, b) in pairs {
            let _ = net.connect_any(routers[a as usize], routers[b as usize], LinkClass::Local);
        }
        for &s in &routers {
            let ds = bfs::distances(&net, s);
            for &t in &routers {
                let dt = bfs::distances(&net, t);
                prop_assert_eq!(ds[t.index()], dt[s.index()], "asymmetric distance");
            }
            // Edge relaxation: d(w) <= d(v) + 1 for every cable v-w.
            for v in net.nodes() {
                if ds[v.index()] == u32::MAX { continue; }
                for &(_, w) in net.channels_from(v) {
                    prop_assert!(ds[w.index()] <= ds[v.index()] + 1);
                }
            }
        }
    }

    /// shortest_path length always equals the BFS distance.
    #[test]
    fn shortest_path_matches_distance(pairs in cable_lists(8)) {
        let mut net = Network::new();
        let routers: Vec<NodeId> = (0..8).map(|i| net.add_router(format!("r{i}"), 7)).collect();
        for (a, b) in pairs {
            let _ = net.connect_any(routers[a as usize], routers[b as usize], LinkClass::Local);
        }
        let d0 = bfs::distances(&net, routers[0]);
        for &t in &routers {
            match bfs::shortest_path(&net, routers[0], t) {
                Some(p) => {
                    prop_assert_eq!(p.len() as u32 - 1, d0[t.index()]);
                    // Consecutive vertices must actually be cabled.
                    for w in p.windows(2) {
                        prop_assert!(net.channel_between(w[0], w[1]).is_some());
                    }
                }
                None => prop_assert_eq!(d0[t.index()], u32::MAX),
            }
        }
    }

    /// A DAG built by only adding edges low→high is always acyclic;
    /// adding any back edge creates a cycle that find_cycle exposes.
    #[test]
    fn dag_acyclic_back_edge_cyclic(
        n in 2usize..30,
        edges in prop::collection::vec((0u32..30, 0u32..30), 1..60),
    ) {
        let mut g = AdjList::new(n);
        let mut added = false;
        for (a, b) in &edges {
            let (a, b) = (a % n as u32, b % n as u32);
            if a < b {
                g.add_edge(a, b);
                added = true;
            }
        }
        prop_assert!(g.is_acyclic());
        prop_assert!(g.topo_sort().is_some());
        prop_assert!(g.find_cycle().is_none());
        if added {
            // Close a cycle with one high→low edge along an existing edge.
            let (a, b) = edges
                .iter()
                .map(|&(a, b)| (a % n as u32, b % n as u32))
                .find(|&(a, b)| a < b)
                .unwrap();
            g.add_edge(b, a);
            prop_assert!(!g.is_acyclic());
            let cyc = g.find_cycle().unwrap();
            for i in 0..cyc.len() {
                let u = cyc[i];
                let v = cyc[(i + 1) % cyc.len()];
                prop_assert!(g.succ(u).contains(&v));
            }
        }
    }

    /// SCC component numbering is reverse-topological: every edge goes
    /// from a component numbered >= its target's.
    #[test]
    fn scc_reverse_topo_numbering(
        n in 1usize..25,
        edges in prop::collection::vec((0u32..25, 0u32..25), 0..80),
    ) {
        let mut g = AdjList::new(n);
        for (a, b) in edges {
            g.add_edge(a % n as u32, b % n as u32);
        }
        let scc = g.scc();
        prop_assert!(scc.count <= n);
        for u in 0..n as u32 {
            for &v in g.succ(u) {
                prop_assert!(scc.comp[u as usize] >= scc.comp[v as usize]);
            }
        }
    }

    /// Max-flow is monotone in capacity and bounded by both the source's
    /// out-capacity and the sink's in-capacity.
    #[test]
    fn flow_bounds(
        edges in prop::collection::vec((0u32..6, 0u32..6, 1u64..10), 1..25),
    ) {
        let mut f = FlowNetwork::new(6);
        let mut out0 = 0u64;
        let mut in5 = 0u64;
        for &(a, b, c) in &edges {
            if a == b { continue; }
            f.add_edge(a, b, c);
            if a == 0 { out0 += c; }
            if b == 5 { in5 += c; }
        }
        let base = f.clone().max_flow(0, 5);
        prop_assert!(base <= out0 && base <= in5);
        // Double every capacity: flow cannot decrease, at most doubles.
        let mut f2 = FlowNetwork::new(6);
        for &(a, b, c) in &edges {
            if a == b { continue; }
            f2.add_edge(a, b, 2 * c);
        }
        let doubled = f2.max_flow(0, 5);
        prop_assert!(doubled >= base);
        prop_assert!(doubled <= 2 * base);
    }

    /// Matching size never exceeds min(left-degree support, right side)
    /// and equals the greedy+augment result computed by brute force on
    /// small instances.
    #[test]
    fn matching_bounds_and_validity(
        edges in prop::collection::vec((0u32..6, 0u32..6), 0..30),
    ) {
        let mut b = Bipartite::new(6, 6);
        for &(l, r) in &edges {
            b.add_edge(l, r);
        }
        let pairs = b.max_matching_pairs();
        let m = pairs.len();
        prop_assert!(m <= 6);
        // Distinctness on both sides.
        let mut ls: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        ls.sort_unstable(); ls.dedup();
        let mut rs: Vec<u32> = pairs.iter().map(|p| p.1).collect();
        rs.sort_unstable(); rs.dedup();
        prop_assert_eq!(ls.len(), m);
        prop_assert_eq!(rs.len(), m);
        // Compare against exhaustive maximum over right-permutations
        // (6! = 720, cheap).
        let mut adj = [[false; 6]; 6];
        for &(l, r) in &edges {
            adj[l as usize][r as usize] = true;
        }
        let mut best = 0usize;
        let mut perm: Vec<usize> = (0..6).collect();
        // Heap's algorithm over permutations.
        fn heaps(perm: &mut Vec<usize>, k: usize, adj: &[[bool; 6]; 6], best: &mut usize) {
            if k == 1 {
                let score = perm.iter().enumerate().filter(|&(l, &r)| adj[l][r]).count();
                *best = (*best).max(score);
                return;
            }
            for i in 0..k {
                heaps(perm, k - 1, adj, best);
                if k.is_multiple_of(2) {
                    perm.swap(i, k - 1);
                } else {
                    perm.swap(0, k - 1);
                }
            }
        }
        heaps(&mut perm, 6, &adj, &mut best);
        prop_assert_eq!(m, best);
    }

    /// The branch-and-bound hitting set hits every input set, never
    /// exceeds greedy, never undercuts the packing bound, and equals
    /// the brute-force minimum whenever it claims minimality.
    #[test]
    fn min_hitting_set_sandwich(
        sets in prop::collection::vec(prop::collection::vec(0u32..10, 1..5), 0..8),
    ) {
        let sol = min_hitting_set(&sets, 1_000_000);
        for s in sets.iter().filter(|s| !s.is_empty()) {
            prop_assert!(s.iter().any(|e| sol.chosen.contains(e)), "{s:?} unhit");
        }
        let greedy = greedy_hitting_set(&sets);
        let lb = packing_lower_bound(&sets);
        prop_assert!(sol.chosen.len() <= greedy.len());
        prop_assert!(lb <= sol.chosen.len());
        if sol.proven_minimal {
            let mut universe: Vec<u32> = sets.iter().flatten().copied().collect();
            universe.sort_unstable();
            universe.dedup();
            let mut best = universe.len();
            for mask in 0u32..(1u32 << universe.len()) {
                let count = mask.count_ones() as usize;
                if count >= best { continue; }
                let hit = |s: &Vec<u32>| s.iter().any(|e| {
                    universe.iter().position(|u| u == e)
                        .is_some_and(|i| mask & (1 << i) != 0)
                });
                if sets.iter().filter(|s| !s.is_empty()).all(hit) {
                    best = count;
                }
            }
            prop_assert_eq!(sol.chosen.len(), best);
        }
    }

    /// DSU set count decreases by exactly the number of merging unions.
    #[test]
    fn dsu_count_invariant(ops in prop::collection::vec((0u32..20, 0u32..20), 0..60)) {
        let mut d = DisjointSets::new(20);
        let mut merges = 0;
        for (a, b) in ops {
            if d.union(a, b) {
                merges += 1;
            }
        }
        prop_assert_eq!(d.set_count(), 20 - merges);
        // Sizes sum to n.
        let mut reps = std::collections::HashSet::new();
        let mut total = 0;
        for x in 0..20 {
            let r = d.find(x);
            if reps.insert(r) {
                total += d.set_size(x);
            }
        }
        prop_assert_eq!(total, 20);
    }
}
