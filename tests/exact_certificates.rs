//! Acceptance tests for the exact deadlock layer: on every checked-in
//! spec the decision procedure agrees with the table verifier, the
//! exact synthesizer never does worse than the greedy one, and every
//! certificate survives an independent replay.

use fractanet::deadlock::{
    deadlock_free_routing_exists, min_cycle_disables, synthesize_disables,
    synthesize_disables_exact, ChannelDependencyGraph, Decision, ExactConfig,
};
use fractanet::prelude::*;

/// The specs pinned by CI (`lint-gate` plus the Fig 1 ring).
const SPECS: &[&str] = &[
    "mesh:6x6",
    "hypercube:6",
    "fattree:64:4:2",
    "fat-fractahedron:1",
    "fat-fractahedron:2",
    "ring:4",
];

fn build(spec: &str) -> System {
    spec.parse::<TopoSpec>().expect("valid spec").build()
}

/// The decision procedure says `Free` on every checked-in spec (they
/// are all connected), the witness replays over every ordered pair,
/// and its routes certify acyclic. Where the installed tables already
/// certify, the two verdicts agree; the one spec whose tables do not
/// certify (the Fig 1 ring) still admits a deadlock-free routing —
/// existence is a property of the network, not of the tables.
#[test]
fn decision_agrees_with_table_verifier_on_every_spec() {
    for spec in SPECS {
        let sys = build(spec);
        let tables_ok =
            verify_deadlock_free_tables(sys.net(), sys.end_nodes(), sys.routes()).is_ok();
        assert_eq!(tables_ok, *spec != "ring:4", "{spec}");
        match deadlock_free_routing_exists(sys.net(), sys.end_nodes()) {
            Decision::Free(synth) => {
                let n = sys.end_nodes().len();
                let covered = synth
                    .witness
                    .replay(sys.net(), sys.end_nodes())
                    .unwrap_or_else(|e| panic!("{spec}: replay failed: {e}"));
                assert_eq!(covered, n * (n - 1), "{spec}");
                assert!(
                    verify_deadlock_free(sys.net(), &synth.witness.routes).is_ok(),
                    "{spec}: witness routes must certify acyclic"
                );
            }
            Decision::NoRouting(obs) => {
                panic!("{spec}: spuriously declared unroutable: {obs:?}")
            }
        }
    }
}

/// Exact synthesis never needs more disables than the greedy
/// first-routable-turn loop, and both results certify acyclic.
#[test]
fn exact_synthesis_never_worse_than_greedy_on_every_spec() {
    for spec in SPECS {
        let sys = build(spec);
        let synth =
            synthesize_disables_exact(sys.net(), sys.end_nodes(), None, &ExactConfig::default())
                .unwrap_or_else(|e| panic!("{spec}: exact synthesis failed: {e}"));
        assert!(
            verify_deadlock_free(sys.net(), &synth.witness.routes).is_ok(),
            "{spec}: exact routes must certify"
        );
        if synth.greedy_size != usize::MAX {
            assert!(
                synth.disables() <= synth.greedy_size,
                "{spec}: exact {} > greedy {}",
                synth.disables(),
                synth.greedy_size
            );
        }
        let (disables, routes) = synthesize_disables(sys.net(), sys.end_nodes(), 400)
            .unwrap_or_else(|e| panic!("{spec}: greedy synthesis failed: {e}"));
        assert!(
            verify_deadlock_free(sys.net(), &routes).is_ok(),
            "{spec}: greedy routes must certify"
        );
        assert!(
            synth.disables() <= disables.len(),
            "{spec}: exact {} > standalone greedy {}",
            synth.disables(),
            disables.len()
        );
    }
}

/// Certificates are machine-checkable JSON: well-formed, and the rank
/// array length equals the channel count.
#[test]
fn certificates_are_replayable_json_on_every_spec() {
    for spec in SPECS {
        let sys = build(spec);
        let synth =
            synthesize_disables_exact(sys.net(), sys.end_nodes(), None, &ExactConfig::default())
                .unwrap();
        let j = synth.certificate_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{spec}: {j}");
        for key in [
            "\"disables\":",
            "\"rank\":",
            "\"covered_pairs\":",
            "\"proven_minimal\":",
        ] {
            assert!(j.contains(key), "{spec}: missing {key} in {j}");
        }
        assert_eq!(
            synth.witness.rank.len(),
            sys.net().channel_count(),
            "{spec}"
        );
    }
}

/// The Fig 1 ring's pinned minimum: its installed shortest-path tables
/// produce exactly one elementary dependency cycle, and the proven
/// minimum disable set hitting the enumerated cycle space has size 1.
/// CI greps the lint output for the same figure.
#[test]
fn ring4_minimal_disable_set_is_pinned() {
    let sys = build("ring:4");
    let cdg = ChannelDependencyGraph::from_tables(sys.net(), sys.end_nodes(), sys.routes());
    let (cycles, truncated) = cdg.graph().elementary_cycles(64, 200_000);
    assert!(!truncated);
    assert_eq!(cycles.len(), 1, "{cycles:?}");
    let sol = min_cycle_disables(&cycles, 100_000);
    assert_eq!(sol.turns.len(), 1, "{sol:?}");
    assert!(sol.proven_minimal);
    assert_eq!(sol.lower_bound, 1);
    // The free-routing synthesis needs no disables at all on ring:4:
    // shortest paths chosen per pair (rather than per table) never
    // close the wrap-around dependency.
    let synth = sys.synthesize_exact().unwrap();
    assert_eq!(synth.disables(), 0, "{synth:?}");
    assert!(synth.proven_minimal);
}
