//! End-to-end reproduction of every numbered artifact in the paper,
//! exercised through the public facade. Each test names the table or
//! figure it checks.

use fractanet::prelude::*;
use fractanet::System;

/// Fig 3 (§2.1): fully-connected configurations of 6-port routers.
#[test]
fn fig3_fully_connected_series() {
    // (routers, node ports, inter-router contention)
    let expect = [
        (1usize, 6usize, None),
        (2, 10, Some(5)),
        (3, 12, Some(4)),
        (4, 12, Some(3)),
        (5, 10, Some(2)),
        (6, 6, Some(1)),
    ];
    for (m, ports, contention) in expect {
        let c = FullyConnectedCluster::new(m, 6).unwrap();
        assert_eq!(c.total_node_ports(), ports, "Fig 3, m = {m}: ports");
        assert_eq!(
            c.predicted_contention(),
            contention,
            "Fig 3, m = {m}: prediction"
        );
        if m >= 2 {
            let sys = System::cluster(m);
            let rep = sys.analyze();
            assert_eq!(
                rep.worst_contention,
                contention.unwrap(),
                "Fig 3, m = {m}: measured"
            );
            assert!(rep.deadlock_free);
        }
    }
}

/// Fig 4 (§2.1): the tetrahedron — 12 ports, 3:1, two-bit routing.
#[test]
fn fig4_tetrahedron() {
    let rep = System::tetrahedron().analyze();
    assert_eq!(rep.nodes, 12);
    assert_eq!(rep.routers, 4);
    assert_eq!(rep.worst_contention, 3);
    assert_eq!(rep.max_hops, 2);
    assert!(rep.deadlock_free);
}

/// Table 1 (§2.3): N-level 2-3-1 fractahedral parameters.
#[test]
fn table1_fractahedral_parameters() {
    for n in 1..=3usize {
        // Maximum nodes: 2 * 8^N with the fan-out level.
        let thin_fan = Fractahedron::new(n, Variant::Thin, true).unwrap();
        assert_eq!(
            thin_fan.end_nodes().len(),
            2 * 8usize.pow(n as u32),
            "Table 1 nodes, N={n}"
        );

        // Maximum delays (without the fan-out level, per the table's
        // note): thin 4N-2, fat 3N-1.
        let thin = System::thin_fractahedron(n, false).analyze();
        assert_eq!(thin.max_hops, 4 * n - 2, "Table 1 thin delay, N={n}");
        let fat = System::fat_fractahedron(n).analyze();
        assert_eq!(fat.max_hops, 3 * n - 1, "Table 1 fat delay, N={n}");

        // Bisection: thin fixed at 4; fat grows as 4^N (the printed
        // "4N" is an OCR artifact; 4^1 = 4 agrees at N=1).
        assert_eq!(thin.bisection_links, 4, "Table 1 thin bisection, N={n}");
        if n <= 2 {
            assert_eq!(
                fat.bisection_links,
                4u64.pow(n as u32),
                "Table 1 fat bisection, N={n}"
            );
        }

        // Both variants deadlock-free (§2.4).
        assert!(thin.deadlock_free && fat.deadlock_free, "§2.4, N={n}");
    }
}

/// §2.2's worked delays: 16-CPU system at 4 hops, 1024-CPU thin at 12.
#[test]
fn section22_cpu_system_delays() {
    let sixteen = System::thin_fractahedron(1, true).analyze();
    assert_eq!(sixteen.nodes, 16);
    assert_eq!(sixteen.max_hops, 4);

    // 1024-CPU check is topological (BFS) to keep runtime sane.
    let f = Fractahedron::paper_thin_1024();
    assert_eq!(f.end_nodes().len(), 1024);
    assert_eq!(fractanet::graph::bfs::max_router_hops(f.net()), Some(12));
}

/// §2.3: 1024-CPU fat fractahedron worst case is 10 router delays
/// (4 up, 6 down), fan-out level included: 3N-1 = 8 plus 2.
#[test]
fn section23_fat_1024_delay() {
    let f = Fractahedron::new(3, Variant::Fat, true).unwrap();
    assert_eq!(f.end_nodes().len(), 1024);
    assert_eq!(fractanet::graph::bfs::max_router_hops(f.net()), Some(10));
}

/// §3.1: mesh scaling — 6x6/11 hops, 8x8/15, 23x23/45, 10:1.
#[test]
fn section31_mesh() {
    let m6 = System::mesh(6, 6).analyze();
    assert_eq!(m6.max_hops, 11);
    assert_eq!(m6.worst_contention, 10);
    assert!(m6.deadlock_free);

    let m8 = Mesh2D::new(8, 8, 2, 6).unwrap();
    assert_eq!(fractanet::graph::bfs::max_router_hops(m8.net()), Some(15));
    let m23 = Mesh2D::new(23, 23, 2, 6).unwrap();
    let a = m23.end_at(0, 0, 0);
    let b = m23.end_at(22, 22, 0);
    assert_eq!(
        fractanet::graph::bfs::router_hops(m23.net(), a, b),
        Some(45)
    );
    // Sizing helper picks the paper's dimensions.
    assert_eq!(Mesh2D::for_nodes(1024).unwrap().cols(), 23);
}

/// §3.2: a 64-node hypercube needs 7-port routers; 6-port ServerNet
/// ASICs cannot build it.
#[test]
fn section32_hypercube_port_budget() {
    assert!(std::panic::catch_unwind(|| Hypercube::new(6, 1, 6)).is_err());
    let h = Hypercube::new(6, 1, 7).unwrap();
    assert_eq!(h.net().router_count(), 64);
    // And the 5-cube fits with one node per corner.
    let five = System::hypercube(5, 6).analyze();
    assert_eq!(five.nodes, 32);
    assert!(five.deadlock_free);
}

/// Fig 6 / §3.3: the 64-node 4-2 fat tree.
#[test]
fn section33_fat_tree() {
    let rep = System::fat_tree(64, 4, 2).analyze();
    assert_eq!(rep.routers, 28, "Table 2");
    assert!((rep.avg_hops - 4.43).abs() < 0.01, "Table 2: 4.4");
    assert_eq!(rep.worst_contention, 12, "12:1 through link HLP");
    assert!(rep.deadlock_free);
}

/// Fig 7 / §3.4 / Table 2: the 64-node fat fractahedron.
#[test]
fn section34_fat_fractahedron() {
    let rep = System::fat_fractahedron(2).analyze();
    assert_eq!(rep.routers, 48, "Table 2: from 28 to 48 routers");
    assert!((rep.avg_hops - 4.30).abs() < 0.01, "Table 2: 4.3");
    assert_eq!(
        rep.local_contention, 4,
        "§3.4: 4:1 on the level-2 diagonals"
    );
    // Full-network exact maximum (down links) — see EXPERIMENTS.md.
    assert_eq!(rep.worst_contention, 8);
    assert!(rep.deadlock_free, "§2.4");
}

/// §3.4: the 3-3 fat tree alternative — 100 routers, 5.9 average hops.
#[test]
fn section34_three_three_fat_tree() {
    let rep = System::fat_tree(64, 3, 3).analyze();
    assert_eq!(rep.routers, 100);
    assert!(
        (rep.avg_hops - 5.9).abs() < 0.1,
        "measured {}",
        rep.avg_hops
    );
}

/// Table 2, assembled: every row side by side.
#[test]
fn table2_side_by_side() {
    let ft = System::fat_tree(64, 4, 2).analyze();
    let ff = System::fat_fractahedron(2).analyze();
    // Contention: 12:1 vs 4:1 (intra-stage population, as quoted).
    assert!(ff.local_contention < ft.worst_contention);
    // Average hops: 4.4 vs 4.3.
    assert!(ff.avg_hops < ft.avg_hops);
    // Routers: 28 vs 48.
    assert!(ff.routers > ft.routers);
    // Bisection comparison (measured): the fractahedron is at least as
    // wide.
    assert!(ff.bisection_links >= ft.bisection_links);
}

/// Fig 1 (§2): wormhole deadlock happens dynamically, and
/// dimension-order routing prevents it.
#[test]
fn fig1_dynamic_deadlock() {
    let ring = System::ring(4);
    assert!(
        !ring.analyze().deadlock_free,
        "static analysis flags the loop"
    );
    let cfg = SimConfig {
        packet_flits: 32,
        buffer_depth: 2,
        max_cycles: 10_000,
        stall_threshold: 200,
        ..SimConfig::default()
    };
    let res = ring.simulate(Workload::fig1_ring(4), cfg.clone());
    assert!(res.deadlock.is_some(), "the Fig 1 pattern must deadlock");

    let mesh = System::mesh(2, 2);
    let wl = Workload::Scripted(vec![(0, 0, 6), (0, 2, 4), (0, 4, 2), (0, 6, 0)]);
    let res = mesh.simulate(wl, cfg);
    assert!(res.deadlock.is_none());
    assert_eq!(res.delivered, 4);
}

/// Fig 2 (§2): hypercube path disables — deadlock-free but uneven.
#[test]
fn fig2_hypercube_disables() {
    use fractanet::deadlock::verify_deadlock_free;
    use fractanet::metrics::utilization::utilization;
    use fractanet::route::treeroute::updown_routeset;

    let h = Hypercube::new(3, 2, 6).unwrap();
    let updown = updown_routeset(h.net(), h.end_nodes(), h.router(0));
    assert!(verify_deadlock_free(h.net(), &updown).is_ok());
    let skew = utilization(h.net(), &updown, Some(LinkClass::Local));

    let ecube = RouteSet::from_table(
        h.net(),
        h.end_nodes(),
        &fractanet::route::dor::ecube_routes(&h),
    )
    .unwrap();
    let even = utilization(h.net(), &ecube, Some(LinkClass::Local));

    assert!(
        even.cv < 1e-9,
        "e-cube is perfectly even on a symmetric cube"
    );
    assert!(
        skew.cv > even.cv,
        "disables skew utilization (the §2 complaint)"
    );
    assert!(skew.max > skew.min);
}
