//! Integration coverage for the library's extensions beyond the
//! paper's headline results: generalized cluster fractahedrons (§4),
//! the virtual-channel alternative (§2), sizing plans, and the
//! background topologies.

use fractanet::deadlock::verify_deadlock_free;
use fractanet::graph::bfs;
use fractanet::metrics::{bisection_estimate, max_link_contention};
use fractanet::prelude::*;
use fractanet::route::genfracta::genfracta_routes;
use fractanet::sim::vc::{dateline_ring_routes, VcEngine};
use fractanet::sizing::{bill, plan, Requirement};
use fractanet::topo::{
    ClusterShape, CubeConnectedCycles, GenFractahedron, ShuffleExchange, Torus2D,
};

/// The generalized builder with the paper's shape reproduces Table 2
/// end to end (routers, hops, contention, deadlock freedom).
#[test]
fn generalized_paper_shape_reproduces_table2() {
    let g = GenFractahedron::new(ClusterShape::PAPER, 2, true).unwrap();
    let rs = RouteSet::from_table(g.net(), g.end_nodes(), &genfracta_routes(&g)).unwrap();
    assert_eq!(g.net().router_count(), 48);
    assert!((rs.avg_router_hops() - 271.0 / 63.0).abs() < 1e-9);
    assert!(verify_deadlock_free(g.net(), &rs).is_ok());
    assert_eq!(max_link_contention(g.net(), &rs).worst, 8);
    assert_eq!(bisection_estimate(g.net(), g.end_nodes(), 4).links, 16);
}

/// Every alternative cluster shape keeps 3N−1 delay and deadlock
/// freedom, and simulates cleanly.
#[test]
fn alternative_shapes_keep_the_invariants() {
    for shape in [
        ClusterShape {
            cluster: 3,
            ports: 6,
            down: 2,
            up: 2,
        },
        ClusterShape {
            cluster: 4,
            ports: 8,
            down: 3,
            up: 2,
        },
        ClusterShape {
            cluster: 5,
            ports: 8,
            down: 2,
            up: 2,
        },
    ] {
        let g = GenFractahedron::new(shape, 2, true).unwrap();
        let rs = RouteSet::from_table(g.net(), g.end_nodes(), &genfracta_routes(&g)).unwrap();
        assert_eq!(bfs::max_router_hops(g.net()), Some(5), "{shape:?}");
        assert!(verify_deadlock_free(g.net(), &rs).is_ok(), "{shape:?}");
        let cfg = SimConfig {
            packet_flits: 8,
            max_cycles: 5_000,
            stall_threshold: 2_500,
            ..SimConfig::default()
        };
        let res = Engine::new(g.net(), &rs, cfg).run(Workload::Bernoulli {
            injection_rate: 0.15,
            pattern: DstPattern::Uniform,
            until_cycle: 2_500,
        });
        assert!(res.deadlock.is_none(), "{shape:?}");
        assert!(res.delivery_ratio() > 0.9, "{shape:?}");
    }
}

/// Virtual channels fix the ring the paper's way of *not* fixing it:
/// same topology, double buffers, Fig 1 completes.
#[test]
fn virtual_channels_versus_topology_change() {
    let ring = Ring::new(4, 1, 6).unwrap();
    let cfg = SimConfig {
        packet_flits: 32,
        buffer_depth: 2,
        max_cycles: 20_000,
        stall_threshold: 300,
        ..SimConfig::default()
    };
    // 1 VC: deadlock (static and dynamic agree).
    let one = dateline_ring_routes(&ring, 1);
    assert!(!one.is_deadlock_free(ring.net()));
    let r1 = VcEngine::new(ring.net(), &one, cfg.clone()).run(Workload::fig1_ring(4));
    assert!(r1.deadlock.is_some());
    // 2 VCs: clean, at 2x buffer cost.
    let two = dateline_ring_routes(&ring, 2);
    assert!(two.is_deadlock_free(ring.net()));
    let e2 = VcEngine::new(ring.net(), &two, cfg.clone());
    let slots2 = e2.total_buffer_slots();
    let r2 = e2.run(Workload::fig1_ring(4));
    assert!(r2.deadlock.is_none());
    assert_eq!(r2.delivered, 4);
    assert_eq!(
        slots2,
        2 * VcEngine::new(ring.net(), &one, cfg).total_buffer_slots()
    );
}

/// Sizing plans agree with the networks they describe and respect the
/// requirement they were given.
#[test]
fn sizing_plans_are_sound() {
    for (cpus, min_bis) in [(16usize, 1u64), (128, 4), (128, 16), (1024, 64)] {
        for opt in plan(Requirement {
            cpus,
            min_bisection_links: min_bis,
            fanout: true,
        }) {
            assert!(opt.capacity >= cpus);
            assert!(opt.bisection >= min_bis);
            // The bill must be self-consistent with a fresh computation.
            let again = bill(opt.variant, opt.levels, true);
            assert_eq!(again, opt);
        }
    }
}

/// Background topologies (torus, CCC, shuffle-exchange) build, connect
/// and route via generic up*/down*, deadlock-free.
#[test]
fn background_topologies_route_updown() {
    use fractanet::route::treeroute::updown_routeset;
    let torus = Torus2D::new(3, 3, 1, 6).unwrap();
    let ccc = CubeConnectedCycles::new(3, 1, 6).unwrap();
    let se = ShuffleExchange::new(3, 1, 6).unwrap();
    let nets: [(&str, &fractanet::graph::Network, &[NodeId], NodeId); 3] = [
        (
            "torus",
            torus.net(),
            torus.end_nodes(),
            torus.router_at(0, 0),
        ),
        ("ccc", ccc.net(), ccc.end_nodes(), ccc.router_at(0, 0)),
        ("shuffle-exchange", se.net(), se.end_nodes(), se.router(0)),
    ];
    for (name, net, ends, root) in nets {
        let rs = updown_routeset(net, ends, root);
        assert!(verify_deadlock_free(net, &rs).is_ok(), "{name}");
        for (s, d, p) in rs.pairs() {
            assert_eq!(
                net.channel_dst(*p.last().unwrap()),
                ends[d],
                "{name} {s}->{d}"
            );
        }
        // And they simulate cleanly under the same routes.
        let cfg = SimConfig {
            packet_flits: 6,
            max_cycles: 4_000,
            stall_threshold: 2_000,
            ..SimConfig::default()
        };
        let res = Engine::new(net, &rs, cfg).run(Workload::all_to_all_burst(ends.len()));
        assert!(res.is_clean(), "{name}: {:?}", res.deadlock);
    }
}

/// Fault injection in routing tables: a cleared entry surfaces as a
/// typed error, never a wrong delivery.
#[test]
fn routing_table_fault_injection() {
    let f = fractanet::topo::Fractahedron::paper_fat_64();
    let mut routes = fractanet::route::fractal::fractal_routes(&f);
    // Corrupt one router's entry for destination 63.
    let victim = f.router(2, 0, 1, 2);
    routes.clear(victim, 63);
    let mut failures = 0;
    for s in 0..63usize {
        match routes.trace(f.net(), f.end_nodes(), s, 63) {
            Ok(p) => {
                assert_eq!(f.net().channel_dst(*p.last().unwrap()), f.end_nodes()[63]);
            }
            Err(fractanet::route::RouteError::MissingEntry { router, dst }) => {
                assert_eq!(router, victim);
                assert_eq!(dst, 63);
                failures += 1;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    // Only sources whose fixed path crosses the victim router fail.
    assert!(failures > 0 && failures < 63, "failures = {failures}");
}
