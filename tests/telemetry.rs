//! End-to-end telemetry acceptance tests.
//!
//! Two gates from the observability issue:
//!
//! 1. A faulted 64-node fat-fractahedron run must export a Chrome
//!    trace whose `table_repair` + `redelivery` spans sum to exactly
//!    the `RecoveryStats::time_to_recover` the simulator reports —
//!    the scalar is now decomposable, not just asserted.
//! 2. On the paper's fault-free topologies, the empirical worst-link
//!    contention a recorded run observes must never exceed the L5
//!    analytical bound; both figures are computed by the same
//!    Hopcroft–Karp matching, so a violation means a worm travelled a
//!    channel its route table does not cross.

use fractanet::prelude::*;
use fractanet::System;
use fractanet_metrics::compare_contention;
use fractanet_telemetry::{to_chrome_trace, SpanKind};

fn first_inter_router_link(sys: &System) -> fractanet_graph::LinkId {
    let net = sys.net();
    net.links()
        .find(|&l| {
            let info = net.link(l);
            net.is_router(info.a.0) && net.is_router(info.b.0)
        })
        .expect("system has inter-router links")
}

#[test]
fn faulted_fat64_chrome_trace_decomposes_time_to_recover() {
    let sys = System::fat_fractahedron(2);
    assert_eq!(sys.end_nodes().len(), 64);
    let cfg = SimConfig {
        packet_flits: 16,
        buffer_depth: 4,
        max_cycles: 24_000,
        stall_threshold: 8_000,
        retry: RetryPolicy {
            ack_timeout: 32,
            max_retries: 5,
            backoff_base: 16,
            jitter_seed: 0x5EED,
        },
        ..SimConfig::default()
    }
    .with_fault(FaultEvent::kill_link(first_inter_router_link(&sys), 3_000))
    .with_telemetry(Telemetry::recording());
    let wl = Workload::Bernoulli {
        injection_rate: 0.2,
        pattern: DstPattern::Uniform,
        until_cycle: 6_000,
    };
    let res = sys.simulate_healing(wl, cfg);
    assert!(res.deadlock.is_none());
    assert_eq!(res.recovery.faults_applied, 1);
    assert!(res.recovery.repairs_installed >= 1);
    let want = res.recovery.time_to_recover.expect("fault must recover");

    let tel = res.telemetry.expect("telemetry was recording");
    assert_eq!(tel.recovery_span_cycles(), Some(want));
    let repair = tel
        .spans
        .iter()
        .find(|s| s.kind == SpanKind::TableRepair)
        .expect("repair span");
    let redeliver = tel
        .spans
        .iter()
        .find(|s| s.kind == SpanKind::Redelivery)
        .expect("redelivery span");
    assert_eq!(repair.begin, 3_000, "repair starts at the fault");
    assert_eq!(redeliver.begin, repair.end, "spans telescope");
    assert_eq!(repair.duration() + redeliver.duration(), want);
    assert!(tel
        .spans
        .iter()
        .any(|s| s.kind == SpanKind::HealInstall && s.begin == repair.end));

    // The exported Chrome trace carries each span verbatim: nonzero
    // spans as complete events, zero-length ones as instants. Summing
    // the exported `dur`s reproduces `time_to_recover`.
    let chrome = to_chrome_trace(&tel);
    assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
    assert_eq!(chrome.matches('[').count(), chrome.matches(']').count());
    for s in &tel.spans {
        let expect = if s.duration() > 0 {
            format!(
                "\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{}",
                s.kind.tag(),
                s.begin,
                s.duration()
            )
        } else {
            format!(
                "\"name\":\"{}\",\"ph\":\"i\",\"ts\":{}",
                s.kind.tag(),
                s.begin
            )
        };
        assert!(chrome.contains(&expect), "missing {expect} in {chrome}");
    }
    // Post-fault latency split saw the recovered traffic.
    assert!(tel.post_fault_latency.count() > 0);
    assert!(tel.pre_fault_latency.count() > 0);
}

#[test]
fn empirical_contention_stays_within_analytical_bounds() {
    // (spec, Table 2 / §3 analytical worst case)
    let systems = [
        ("fat-fractahedron:2", System::fat_fractahedron(2), 8),
        ("mesh:6x6", System::mesh(6, 6), 10),
        ("fattree:64:4:2", System::fat_tree(64, 4, 2), 12),
    ];
    for (name, sys, paper_worst) in systems {
        let analytical = max_link_contention(sys.net(), sys.route_set());
        assert_eq!(analytical.worst, paper_worst, "{name}");
        let cfg = SimConfig {
            packet_flits: 16,
            buffer_depth: 4,
            max_cycles: 8_000,
            stall_threshold: 4_000,
            telemetry: Telemetry::recording().with_event_capacity(1_024),
            ..SimConfig::default()
        };
        // Heavy uniform load maximizes concurrent contenders.
        let wl = Workload::Bernoulli {
            injection_rate: 0.5,
            pattern: DstPattern::Uniform,
            until_cycle: 6_000,
        };
        let res = sys.simulate(wl, cfg);
        assert!(res.deadlock.is_none(), "{name}");
        assert!(res.delivered > 0, "{name}");
        let tel = res.telemetry.expect("telemetry was recording");

        let cmp = compare_contention(&analytical, &tel.channels);
        assert!(
            cmp.within_bounds(),
            "{name}: empirical contention exceeded the L5 analytical bound: {:?}",
            cmp.violations
        );
        assert!(cmp.worst_empirical >= 1, "{name} carried traffic");
        assert!(cmp.worst_empirical <= cmp.worst_analytical, "{name}");
        // The report's own headline agrees with the comparison.
        assert_eq!(
            tel.worst_contention().map(|(_, k)| k as usize),
            Some(cmp.worst_empirical),
            "{name}"
        );
    }
}
