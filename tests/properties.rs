//! Workspace-level property tests: random configurations drawn from
//! the topology grammar must uphold the library's core invariants.

use fractanet::deadlock::verify_deadlock_free;
use fractanet::graph::bfs;
use fractanet::graph::{LinkId, NodeId};
use fractanet::metrics::{bisection_estimate, max_link_contention};
use fractanet::prelude::*;
use fractanet::route::{repair_tables, DeadMask, IncrementalRepair, Paths};
use fractanet::System;
use proptest::prelude::*;

/// A small grammar of valid system configurations.
#[derive(Clone, Debug)]
enum Config {
    Mesh(usize, usize),
    Cluster(usize),
    Hypercube(u32),
    FatTree(usize, usize, usize),
    Fractahedron(usize, bool, bool), // levels, fat?, fanout?
    BinaryTree(u32, usize),
    VcSpec(&'static str),
}

impl Config {
    fn build(&self) -> System {
        match *self {
            Config::Mesh(c, r) => System::mesh(c, r),
            Config::Cluster(m) => System::cluster(m),
            Config::Hypercube(d) => System::hypercube(d, 6),
            Config::FatTree(n, d, u) => System::fat_tree(n, d, u),
            Config::Fractahedron(l, true, _) => System::fat_fractahedron(l),
            Config::Fractahedron(l, false, f) => System::thin_fractahedron(l, f),
            Config::BinaryTree(d, n) => System::binary_tree(d, n),
            Config::VcSpec(s) => s.parse::<TopoSpec>().expect("grammar spec").build(),
        }
    }
}

fn configs() -> impl Strategy<Value = Config> {
    prop_oneof![
        (2usize..6, 2usize..6).prop_map(|(c, r)| Config::Mesh(c, r)),
        (2usize..=6).prop_map(Config::Cluster),
        (2u32..=5).prop_map(Config::Hypercube),
        (6usize..40, 2usize..=4, 1usize..=2).prop_map(|(n, d, u)| Config::FatTree(n, d, u)),
        (1usize..=2, any::<bool>(), any::<bool>())
            .prop_map(|(l, fat, fan)| Config::Fractahedron(l, fat, fan)),
        (2u32..=4, 1usize..=3).prop_map(|(d, n)| Config::BinaryTree(d, n)),
    ]
}

/// The engine grammar: every `configs()` topology plus the
/// virtual-channel specs, whose *physical* dependency graphs are
/// intentionally cyclic on rings and tori — only the VC discipline
/// keeps them live. Used by the engine-parity and delivery-set
/// properties (the routing-invariant properties above assume acyclic
/// physical CDGs and keep the base grammar).
fn engine_configs() -> impl Strategy<Value = Config> {
    const VC_SPECS: [&str; 6] = [
        "ring:6:vc2",
        "ring:5:vc3",
        "torus:4x4:vc2",
        "torus:3x3:vc2:dateline",
        "mesh:4x4:vc2:ecube",
        "hypercube:3:vc2",
    ];
    prop_oneof![
        configs(),
        (0usize..VC_SPECS.len()).prop_map(|i| Config::VcSpec(VC_SPECS[i])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every configuration builds a connected, valid network whose
    /// canonical routing delivers every pair by a simple path.
    #[test]
    fn routing_always_delivers(cfg in configs()) {
        let sys = cfg.build();
        prop_assert!(sys.net().validate().is_ok());
        prop_assert!(bfs::is_connected(sys.net()));
        let rs = sys.route_set();
        prop_assert!(rs.check_simple().is_ok());
        for (s, d, p) in rs.pairs() {
            prop_assert_eq!(
                sys.net().channel_dst(*p.last().unwrap()),
                sys.end_nodes()[d],
                "{:?}: {}->{}", cfg, s, d
            );
            prop_assert_eq!(sys.net().channel_src(p[0]), sys.end_nodes()[s]);
        }
    }

    /// Canonical routings are minimal: routed max/avg equal BFS.
    #[test]
    fn routings_are_minimal(cfg in configs()) {
        let sys = cfg.build();
        let routed = sys.route_set().avg_router_hops();
        let topo = bfs::avg_router_hops(sys.net()).unwrap();
        prop_assert!((routed - topo).abs() < 1e-9, "{:?}: {} vs {}", cfg, routed, topo);
    }

    /// Deadlock freedom holds for every canonical routing except the
    /// ring (which the library intentionally ships cyclic as the Fig 1
    /// exhibit — rings are excluded from the grammar).
    #[test]
    fn canonical_routings_deadlock_free(cfg in configs()) {
        let sys = cfg.build();
        prop_assert!(
            verify_deadlock_free(sys.net(), sys.route_set()).is_ok(),
            "{:?} has a dependency cycle", cfg
        );
    }

    /// Contention is bounded: at least 1 on some channel (any route
    /// uses links), at most nodes-1 (sources are distinct).
    #[test]
    fn contention_bounds(cfg in configs()) {
        let sys = cfg.build();
        let n = sys.end_nodes().len();
        let rep = max_link_contention(sys.net(), sys.route_set());
        prop_assert!(rep.worst >= 1);
        prop_assert!(rep.worst < n, "{:?}: {} vs {}", cfg, rep.worst, n);
    }

    /// Bisection is at least 1 on a connected network and no more than
    /// the cables leaving the smaller half's attach points.
    #[test]
    fn bisection_bounds(cfg in configs()) {
        let sys = cfg.build();
        let rep = bisection_estimate(sys.net(), sys.end_nodes(), 2);
        let half = sys.end_nodes().len() / 2;
        prop_assert!(rep.links >= 1);
        prop_assert!(rep.links <= half as u64, "{:?}: cut {} > half {}", cfg, rep.links, half);
    }

    /// Short random simulations on random configs never deadlock and
    /// deliver something — including the VC configs, whose physical
    /// dependency graphs are cyclic and only the Dally–Seitz split
    /// keeps live.
    #[test]
    fn random_sims_stay_clean(cfg in engine_configs(), seed in 0u64..1000) {
        let sys = cfg.build();
        let sim_cfg = SimConfig {
            packet_flits: 6,
            buffer_depth: 2,
            max_cycles: 2_500,
            stall_threshold: 1_200,
            seed,
            ..SimConfig::default()
        };
        let res = sys.simulate(
            Workload::Bernoulli {
                injection_rate: 0.2,
                pattern: DstPattern::Uniform,
                until_cycle: 1_000,
            },
            sim_cfg,
        );
        prop_assert!(res.deadlock.is_none(), "{:?} seed {}", cfg, seed);
        prop_assert!(res.generated == 0 || res.delivered > 0);
    }

    /// Self-healing invariants under random fault sets on the paper's
    /// two redundant families: the repaired tables always certify
    /// CDG-acyclic, and no surviving route touches a dead link or
    /// router.
    #[test]
    fn healed_tables_avoid_faults_and_certify(
        fat in any::<bool>(),
        size in 1usize..=2,
        link_picks in prop::collection::vec(0usize..100_000, 0usize..4),
        router_picks in prop::collection::vec(0usize..100_000, 0usize..2),
    ) {
        let sys = if fat {
            System::fat_fractahedron(size)
        } else {
            System::hypercube(size as u32 + 2, 6)
        };
        let net = sys.net();
        let links: Vec<LinkId> = net.links().collect();
        let routers: Vec<NodeId> = net.nodes().filter(|&v| net.is_router(v)).collect();
        let mut faults = FaultSet::none();
        for &p in &link_picks {
            faults.kill_link(links[p % links.len()]);
        }
        for &p in &router_picks {
            faults.kill_router(routers[p % routers.len()]);
        }

        let rep = heal(net, sys.end_nodes(), &faults);
        prop_assert!(rep.is_ok(), "healing must always certify: {:?}", rep.err());
        let rep = rep.unwrap();
        // Independent re-certification (heal verified internally too).
        prop_assert!(verify_deadlock_free(net, &rep.routes).is_ok());
        // No surviving route crosses a dead component.
        let mut connected = 0usize;
        for (s, d, p) in rep.routes.pairs() {
            if p.is_empty() {
                continue;
            }
            connected += 1;
            for &ch in p {
                prop_assert!(
                    faults.link_ok(ch.link())
                        && faults.router_ok(net.channel_src(ch))
                        && faults.router_ok(net.channel_dst(ch)),
                    "{}->{} routed through a dead component", s, d
                );
            }
        }
        prop_assert_eq!(connected, rep.connected_pairs);
        prop_assert!(rep.connected_pairs <= rep.total_pairs);

        // Table-canonical invariant: walking the installed tables
        // reproduces every surviving traced path element for element.
        let mut mismatches = Vec::new();
        Paths::tables(net, sys.end_nodes(), &rep.tables).for_each_pair(|s, d, res| {
            let frozen = rep.routes.path(s, d);
            if frozen.is_empty() {
                return; // severed by the fault set; tables may err here
            }
            if res != Ok(frozen) {
                mismatches.push((s, d));
            }
        });
        prop_assert!(mismatches.is_empty(), "table walks diverged: {:?}", mismatches);
    }

    /// The canonical tables and the derived dense matrix describe the
    /// same routing: every pair's table walk equals its traced path.
    #[test]
    fn tables_trace_to_the_same_paths(cfg in configs()) {
        let sys = cfg.build();
        let rs = sys.route_set();
        let mut mismatches = Vec::new();
        Paths::tables(sys.net(), sys.end_nodes(), sys.routes()).for_each_pair(|s, d, res| {
            if res != Ok(rs.path(s, d)) {
                mismatches.push((s, d));
            }
        });
        prop_assert!(mismatches.is_empty(), "{:?}: {:?}", cfg, mismatches);
    }

    /// The table-walking engine is bit-identical to the legacy
    /// path-snapshot engine on any seeded run.
    #[test]
    fn dense_and_table_engines_agree(cfg in configs(), seed in 0u64..1000) {
        let sys = cfg.build();
        let sim_cfg = SimConfig {
            packet_flits: 6,
            buffer_depth: 2,
            max_cycles: 2_500,
            stall_threshold: 1_200,
            seed,
            ..SimConfig::default()
        };
        let wl = Workload::Bernoulli {
            injection_rate: 0.2,
            pattern: DstPattern::Uniform,
            until_cycle: 1_000,
        };
        let dense = Engine::new(sys.net(), sys.route_set(), sim_cfg.clone()).run(wl.clone());
        let tabled = Engine::with_tables(sys.net(), sys.end_nodes(), sys.shared_routes(), sim_cfg)
            .run(wl);
        prop_assert_eq!(dense.generated, tabled.generated, "{:?} seed {}", cfg, seed);
        prop_assert_eq!(dense.delivered, tabled.delivered, "{:?} seed {}", cfg, seed);
        prop_assert_eq!(dense.cycles, tabled.cycles);
        prop_assert_eq!(dense.avg_latency, tabled.avg_latency);
        prop_assert_eq!(dense.max_latency, tabled.max_latency);
        prop_assert_eq!(dense.channel_busy, tabled.channel_busy);
        prop_assert_eq!(dense.deadlock.is_some(), tabled.deadlock.is_some());
    }

    /// The sharded parallel engine is bit-identical to the serial
    /// oracle across the full config grammar — including random
    /// kill/repair/brownout/flaky schedules, healing epoch installs
    /// mid-run, and telemetry recording. Every field of the result
    /// (latencies, busy counts, recovery stats, the telemetry event
    /// ring) must match at 2, 4, and 8 threads — at every FIFO depth
    /// (including the unbounded sentinel) and credit delay, over the
    /// engine grammar with its virtual-channel configs.
    #[test]
    fn parallel_and_serial_engines_agree(
        cfg in engine_configs(),
        seed in 0u64..1000,
        heal in any::<bool>(),
        depth_pick in 0usize..3,
        delay_pick in 0usize..3,
        schedule in prop::collection::vec((0usize..100_000, 0u8..4), 0usize..3),
    ) {
        let sys = cfg.build();
        let links: Vec<LinkId> = sys.net().links().collect();
        let mut sim_cfg = SimConfig {
            packet_flits: 6,
            buffer_depth: [2, 4, SimConfig::INFINITE_DEPTH][depth_pick],
            credit_delay: [0u64, 1, 3][delay_pick],
            max_cycles: 2_500,
            stall_threshold: 1_200,
            seed,
            telemetry: Telemetry::recording(),
            ..SimConfig::default()
        };
        for (i, &(pick, kind)) in schedule.iter().enumerate() {
            let l = links[pick % links.len()];
            let at = 100 + 150 * i as u64;
            sim_cfg = sim_cfg.with_fault(match kind {
                0 => FaultEvent::kill_link(l, at),
                1 => FaultEvent::kill_link(l, at).transient(at + 500),
                2 => FaultEvent::brownout(l, 40, 60, at).transient(at + 700),
                _ => FaultEvent::flaky_link(l, 250, at).transient(at + 400),
            });
        }
        let wl = Workload::Bernoulli {
            injection_rate: 0.2,
            pattern: DstPattern::Uniform,
            until_cycle: 1_000,
        };
        let run = |threads: usize| {
            let c = sim_cfg.clone().with_threads(threads);
            if heal {
                sys.simulate_healing(wl.clone(), c)
            } else {
                sys.simulate(wl.clone(), c)
            }
        };
        let serial = format!("{:?}", run(1));
        for threads in [2usize, 4, 8] {
            let sharded = format!("{:?}", run(threads));
            prop_assert_eq!(
                &serial, &sharded,
                "{:?} seed {} heal {} threads {}", cfg, seed, heal, threads
            );
        }
    }

    /// The live-metrics pipeline is inert: turning sampling on changes
    /// nothing about a run except the attached report, at every shard
    /// width. A metrics-on run at 1/2/4/8 threads is bit-identical to
    /// the serial metrics-off oracle once the report is detached, and
    /// the report itself is bit-identical across widths.
    #[test]
    fn metrics_are_inert_at_every_width(
        cfg in engine_configs(),
        seed in 0u64..1000,
        heal in any::<bool>(),
        every_pick in 0usize..3,
    ) {
        let every = [50u64, 100, 250][every_pick];
        let sys = cfg.build();
        let sim_cfg = SimConfig {
            packet_flits: 6,
            buffer_depth: 2,
            max_cycles: 2_500,
            stall_threshold: 1_200,
            seed,
            ..SimConfig::default()
        };
        let wl = Workload::Bernoulli {
            injection_rate: 0.2,
            pattern: DstPattern::Uniform,
            until_cycle: 1_000,
        };
        let run = |threads: usize, metrics: MetricsConfig| {
            let c = sim_cfg.clone().with_threads(threads).with_metrics(metrics);
            if heal {
                sys.simulate_healing(wl.clone(), c)
            } else {
                sys.simulate(wl.clone(), c)
            }
        };
        let oracle = run(1, MetricsConfig::off());
        prop_assert!(oracle.metrics.is_none());
        let baseline = format!("{:?}", oracle);
        let mut serial_report = None;
        for threads in [1usize, 2, 4, 8] {
            let mut on = run(threads, MetricsConfig::sampling(every).with_deadline(64));
            let report = on.metrics.take().expect("metrics were on");
            prop_assert_eq!(
                &baseline, &format!("{:?}", on),
                "metrics perturbed the sim: {:?} seed {} heal {} threads {}",
                cfg, seed, heal, threads
            );
            match &serial_report {
                None => serial_report = Some(report),
                Some(first) => prop_assert_eq!(
                    first, &report,
                    "report differs across widths: {:?} seed {} heal {} threads {}",
                    cfg, seed, heal, threads
                ),
            }
        }
    }

    /// Incremental dirty-column repair produces byte-identical tables
    /// to a from-scratch rebuild, including across successive fault
    /// batches.
    #[test]
    fn incremental_repair_matches_full(
        fat in any::<bool>(),
        size in 1usize..=2,
        link_picks in prop::collection::vec(0usize..100_000, 1usize..5),
        split in 0usize..5,
    ) {
        let sys = if fat {
            System::fat_fractahedron(size)
        } else {
            System::hypercube(size as u32 + 2, 6)
        };
        let net = sys.net();
        let links: Vec<LinkId> = net.links().collect();
        let dead: Vec<LinkId> = link_picks.iter().map(|&p| links[p % links.len()]).collect();
        let cut = split.min(dead.len());

        let mut inc = IncrementalRepair::new(net, sys.end_nodes());
        // Warm the incremental state on the first batch, then grow the
        // fault set — the second repair exercises the dirty-column path.
        let first = DeadMask::from_dead(net, &dead[..cut], &[]);
        let _ = inc.repair(&first);
        let full_mask = DeadMask::from_dead(net, &dead, &[]);
        let inc_rep = inc.repair(&full_mask);
        let full = repair_tables(net, sys.end_nodes(), &full_mask);
        prop_assert_eq!(inc_rep.connected_pairs, full.connected_pairs);
        prop_assert!(inc_rep.tables == full.tables, "incremental diverged from full rebuild");
    }

    /// The `INFINITE_DEPTH` sentinel is semantics-free: unbounded
    /// FIFOs are bit-identical — full `Debug`, telemetry ring
    /// included — to a finite depth too large to ever bind, at every
    /// shard width. This pins the acceptance criterion that
    /// `fifo depth = ∞, credit delay = 0` reproduces the pre-credit
    /// engine exactly across the config grammar.
    #[test]
    fn infinite_depth_equals_unbinding_finite_depth(
        cfg in engine_configs(),
        seed in 0u64..1000,
        threads_pick in 0usize..4,
    ) {
        let threads = [1usize, 2, 4, 8][threads_pick];
        let sys = cfg.build();
        let wl = Workload::Bernoulli {
            injection_rate: 0.2,
            pattern: DstPattern::Uniform,
            until_cycle: 1_000,
        };
        let base = SimConfig {
            packet_flits: 6,
            max_cycles: 2_500,
            stall_threshold: 1_200,
            seed,
            telemetry: Telemetry::recording(),
            ..SimConfig::default()
        }
        .with_threads(threads);
        let inf = sys.simulate(wl.clone(), base.clone().with_infinite_buffers());
        let vast = sys.simulate(wl, base.with_buffer_depth(1 << 20));
        prop_assert_eq!(
            format!("{:?}", inf), format!("{:?}", vast),
            "{:?} seed {} threads {}", cfg, seed, threads
        );
    }

    /// With unbounded FIFOs the credit loop is inert: whatever the
    /// round-trip delay, every behavioral field — deliveries,
    /// latencies, per-channel busy counts — matches the delay-0 run.
    /// Only the quiescence drain tail (`cycles`, and the throughput
    /// divisor with it) may stretch while the last in-flight credits
    /// land.
    #[test]
    fn credit_delay_is_inert_at_infinite_depth(
        cfg in engine_configs(),
        seed in 0u64..1000,
        delay in 1u64..8,
    ) {
        let sys = cfg.build();
        let wl = Workload::Bernoulli {
            injection_rate: 0.2,
            pattern: DstPattern::Uniform,
            until_cycle: 1_000,
        };
        let base = SimConfig {
            packet_flits: 6,
            max_cycles: 2_500,
            stall_threshold: 1_200,
            seed,
            ..SimConfig::default()
        }
        .with_infinite_buffers();
        let a = sys.simulate(wl.clone(), base.clone().with_credit_delay(0));
        let b = sys.simulate(wl, base.with_credit_delay(delay));
        prop_assert_eq!(a.generated, b.generated, "{:?} seed {} delay {}", cfg, seed, delay);
        prop_assert_eq!(a.delivered, b.delivered, "{:?} seed {} delay {}", cfg, seed, delay);
        prop_assert_eq!(a.avg_latency, b.avg_latency);
        prop_assert_eq!(a.avg_network_latency, b.avg_network_latency);
        prop_assert_eq!(a.p95_latency, b.p95_latency);
        prop_assert_eq!(a.max_latency, b.max_latency);
        prop_assert_eq!(&a.channel_busy, &b.channel_busy);
        prop_assert_eq!(a.deadlock.is_none(), b.deadlock.is_none());
        prop_assert_eq!(a.credits.consumed, b.credits.consumed);
        prop_assert_eq!(b.credits.stalls, 0u64, "unbounded FIFOs can never stall on credits");
    }

    /// Finite FIFOs and delayed credits change timing, never
    /// delivery: under a transient mid-run link kill — with and
    /// without healing — a scripted workload is delivered in full,
    /// exactly once with no abandonments, at every FIFO depth and
    /// credit delay, just as at infinite depth; and the finite run's
    /// credit ledger balances at quiescence.
    #[test]
    fn finite_fifos_preserve_the_delivery_set(
        cfg in engine_configs(),
        seed in 0u64..500,
        heal in any::<bool>(),
        pkts in prop::collection::vec((0u64..400, 0usize..64, 1usize..64), 1usize..20),
        link_pick in 0usize..100_000,
        depth_pick in 0usize..3,
        delay in 0u64..4,
    ) {
        let sys = cfg.build();
        let n = sys.end_nodes().len();
        let script: Vec<(u64, usize, usize)> = pkts
            .iter()
            .map(|&(at, s, hop)| (at, s % n, (s % n + hop) % n))
            .filter(|&(_, s, d)| s != d)
            .collect();
        if script.is_empty() { return Ok(()); }
        let links: Vec<LinkId> = sys.net().links().collect();
        let victim = links[link_pick % links.len()];
        let run = |depth: u32, delay: u64| {
            let c = SimConfig {
                packet_flits: 6,
                max_cycles: 60_000,
                stall_threshold: 4_000,
                seed,
                retry: RetryPolicy {
                    ack_timeout: 64,
                    max_retries: 20,
                    backoff_base: 16,
                    jitter_seed: 7,
                },
                ..SimConfig::default()
            }
            .with_buffer_depth(depth)
            .with_credit_delay(delay)
            .with_fault(FaultEvent::kill_link(victim, 150).transient(900));
            let wl = Workload::Scripted(script.clone());
            if heal {
                sys.simulate_healing(wl, c)
            } else {
                sys.simulate(wl, c)
            }
        };
        let depth = [1u32, 2, 4][depth_pick];
        let inf = run(SimConfig::INFINITE_DEPTH, 0);
        let fin = run(depth, delay);
        for (name, r) in [("infinite", &inf), ("finite", &fin)] {
            prop_assert!(
                r.deadlock.is_none(),
                "{} run deadlocked: {:?} depth {} delay {} heal {}",
                name, cfg, depth, delay, heal
            );
            prop_assert!(
                r.recovery.abandoned.is_empty(),
                "{} run abandoned {:?}: {:?} depth {} delay {} heal {}",
                name, r.recovery.abandoned, cfg, depth, delay, heal
            );
            prop_assert_eq!(
                r.delivered, r.generated,
                "{} run dropped packets: {:?} depth {} delay {} heal {}",
                name, cfg, depth, delay, heal
            );
        }
        prop_assert_eq!(fin.generated, inf.generated, "workload is depth-independent");
        prop_assert!(
            fin.credits.is_conserved(),
            "credit leak at quiescence: consumed {} returned {}",
            fin.credits.consumed, fin.credits.returned
        );
    }
}
