//! Cross-crate consistency: the analytical layers and the simulator
//! must agree with each other.

use fractanet::graph::bfs;
use fractanet::prelude::*;
use fractanet::System;

fn all_systems() -> Vec<System> {
    vec![
        System::mesh(4, 4),
        System::tetrahedron(),
        System::cluster(3),
        System::hypercube(3, 6),
        System::fat_tree(32, 4, 2),
        System::fat_fractahedron(1),
        System::fat_fractahedron(2),
        System::thin_fractahedron(2, false),
        System::binary_tree(3, 2),
    ]
}

/// Every canonical routing in the library is minimal: routed hop
/// statistics equal BFS shortest-path statistics.
#[test]
fn canonical_routings_are_minimal() {
    for sys in all_systems() {
        let routed = HopStats::routed(sys.route_set()).unwrap();
        let topo = HopStats::topological(sys.net()).unwrap();
        assert_eq!(routed.histogram, topo.histogram, "{}", sys.name());
    }
}

/// Statically-verified deadlock freedom implies the simulator never
/// reports a deadlock, across loads and seeds.
#[test]
fn static_freedom_implies_dynamic_freedom() {
    for sys in all_systems() {
        if !sys.analyze().deadlock_free {
            continue;
        }
        for (seed, rate) in [(1u64, 0.15), (2, 0.45)] {
            let cfg = SimConfig {
                packet_flits: 8,
                buffer_depth: 2,
                max_cycles: 4_000,
                stall_threshold: 1_500,
                seed,
                ..SimConfig::default()
            };
            let res = sys.simulate(
                Workload::Bernoulli {
                    injection_rate: rate,
                    pattern: DstPattern::Uniform,
                    until_cycle: 2_000,
                },
                cfg,
            );
            assert!(
                res.deadlock.is_none(),
                "{} deadlocked at rate {rate}, seed {seed}",
                sys.name()
            );
        }
    }
}

/// Scripted all-to-all bursts drain completely on deadlock-free
/// systems and deliver every packet.
#[test]
fn all_to_all_bursts_drain() {
    for sys in [
        System::tetrahedron(),
        System::fat_fractahedron(1),
        System::mesh(3, 3),
    ] {
        let n = sys.end_nodes().len();
        let cfg = SimConfig::default()
            .with_packet_flits(6)
            .with_max_cycles(100_000);
        let res = sys.simulate(Workload::all_to_all_burst(n), cfg);
        assert!(res.is_clean(), "{}: {:?}", sys.name(), res.deadlock);
        assert_eq!(res.delivered, n * (n - 1), "{}", sys.name());
    }
}

/// Zero-load network latency ≈ router hops + packet length: the
/// simulator's timing agrees with the analytical hop count.
#[test]
fn zero_load_latency_matches_hops() {
    let sys = System::fat_fractahedron(2);
    let flits = 16u64;
    for (s, d) in [(0usize, 63usize), (0, 1), (5, 9)] {
        let cfg = SimConfig::default()
            .with_packet_flits(flits as u32)
            .with_max_cycles(2_000);
        let res = sys.simulate(Workload::Scripted(vec![(0, s, d)]), cfg);
        assert!(res.is_clean());
        let hops = sys.route_set().router_hops(s, d) as u64;
        // Head pipelines one channel per cycle over hops+1 channels;
        // the tail follows `flits` cycles behind.
        let expect = hops + 1 + flits;
        assert_eq!(res.max_latency, expect, "{s}->{d}");
    }
}

/// The simulator's per-channel busy counts sum to
/// flits × channels-per-path for scripted traffic.
#[test]
fn flit_conservation() {
    let sys = System::tetrahedron();
    let flits = 10u64;
    let wl = Workload::Scripted(vec![(0, 0, 11), (0, 3, 6), (5, 2, 9)]);
    let cfg = SimConfig::default()
        .with_packet_flits(flits as u32)
        .with_max_cycles(5_000);
    let res = sys.simulate(wl, cfg);
    assert!(res.is_clean());
    let expected: u64 = [(0usize, 11usize), (3, 6), (2, 9)]
        .iter()
        .map(|&(s, d)| flits * sys.route_set().path(s, d).len() as u64)
        .sum();
    assert_eq!(res.channel_busy.iter().sum::<u64>(), expected);
}

/// Contention predicts simulated pain: the witness transfer set of the
/// worst link (the metrics crate's own 12:1 example) must take longer
/// end to end than the same number of transfers spread across links.
#[test]
fn contention_manifests_in_simulation() {
    use fractanet::metrics::contention::{contention_of_channel, pattern_contention};

    let ft = System::fat_tree(64, 4, 2);
    let rep = fractanet::metrics::max_link_contention(ft.net(), ft.route_set());
    assert_eq!(rep.worst, 12);
    // The adversarial set: the maximum matching on the worst channel.
    let (k, witness) = contention_of_channel(ft.net(), ft.route_set(), rep.worst_channel);
    assert_eq!(k, 12);
    let adversarial: Vec<(u64, usize, usize)> =
        witness.iter().map(|&(s, d)| (0u64, s, d)).collect();
    // A benign set of the same size: sources spread over all four
    // groups, each to a far destination, verified low-contention.
    let benign_pairs: Vec<(usize, usize)> = (0..12).map(|i| (i * 5, (i * 5 + 32) % 64)).collect();
    let (benign_worst, _) = pattern_contention(ft.net(), ft.route_set(), &benign_pairs);
    assert!(
        benign_worst <= 4,
        "benign pattern should spread: {benign_worst}"
    );
    let benign: Vec<(u64, usize, usize)> =
        benign_pairs.iter().map(|&(s, d)| (0u64, s, d)).collect();

    let cfg = SimConfig::default()
        .with_packet_flits(24)
        .with_max_cycles(100_000);
    let bad = ft.simulate(Workload::Scripted(adversarial), cfg.clone());
    let good = ft.simulate(Workload::Scripted(benign), cfg);
    assert!(bad.is_clean() && good.is_clean());
    assert!(
        bad.max_latency > good.max_latency,
        "12 transfers through one link ({}) vs spread ({})",
        bad.max_latency,
        good.max_latency
    );
}

/// Dual-fabric failover keeps simulated traffic flowing: simulate on
/// Y's routes after X dies entirely.
#[test]
fn fabric_failover_end_to_end() {
    use fractanet::servernet::DualFabric;
    use fractanet::topo::Fractahedron;
    let pair = DualFabric::new(|| Fractahedron::new(1, Variant::Fat, false).unwrap());
    // Y is an independent, identical network: route and simulate on it.
    let routes = fractanet::route::fractal::fractal_routes(&pair.y);
    let rs = RouteSet::from_table(pair.y.net(), pair.y.end_nodes(), &routes).unwrap();
    let cfg = SimConfig::default()
        .with_packet_flits(8)
        .with_max_cycles(20_000);
    let res = Engine::new(pair.y.net(), &rs, cfg).run(Workload::all_to_all_burst(8));
    assert!(res.is_clean());
}

/// BFS, routed paths and the network agree on reachability after
/// faults.
#[test]
fn fault_reachability_consistent_with_bfs() {
    use fractanet::servernet::faults::{reachable, FaultSet};
    let sys = System::fat_fractahedron(1);
    let ends = sys.end_nodes();
    let mut faults = FaultSet::none();
    // Kill the attach link of node 0.
    faults.kill_link(sys.net().channels_from(ends[0])[0].0.link());
    assert!(!reachable(sys.net(), &faults, ends[0], ends[5]));
    assert!(reachable(sys.net(), &faults, ends[1], ends[5]));
    // BFS on the intact network says everything is connected.
    assert!(bfs::is_connected(sys.net()));
}
