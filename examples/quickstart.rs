//! Quickstart: build the paper's 64-node networks and print the
//! Table 2 comparison, extended with everything the library measures.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fractanet::System;

fn main() {
    println!("fractanet quickstart — Horst, IPPS 1996, Table 2 (extended)\n");

    let systems = [
        System::mesh(6, 6),
        System::fat_tree(64, 4, 2),
        System::fat_tree(64, 3, 3),
        System::fat_fractahedron(2),
        System::thin_fractahedron(2, false),
    ];

    println!(
        "{:<26} {:>5} {:>7} {:>6} {:>8} {:>8} {:>10} {:>10} {:>9} {:>9}",
        "topology",
        "nodes",
        "routers",
        "links",
        "avg hops",
        "max hops",
        "contention",
        "(local)",
        "bisection",
        "dl-free"
    );
    for sys in &systems {
        let r = sys.analyze();
        println!(
            "{:<26} {:>5} {:>7} {:>6} {:>8.2} {:>8} {:>9}:1 {:>9}:1 {:>9} {:>9}",
            r.name,
            r.nodes,
            r.routers,
            r.links,
            r.avg_hops,
            r.max_hops,
            r.worst_contention,
            r.local_contention,
            r.bisection_links,
            if r.deadlock_free { "yes" } else { "NO" },
        );
    }

    println!("\npaper reference points:");
    println!("  4-2 fat tree      — 28 routers, 4.4 avg hops, 12:1 contention (§3.3, Table 2)");
    println!("  fat fractahedron  — 48 routers, 4.3 avg hops,  4:1 on intra-tetra links (§3.4)");
    println!("  6x6 mesh          — 11 max hops, 10:1 contention (§3.1)");
    println!("  3-3 fat tree      — 100 routers, 5.9 avg hops (§3.4)");
}
