//! Deadlock audit: run the Dally–Seitz channel-dependency check over
//! every topology/routing pair in the library, run the static linter
//! over the Fig 1 ring tables (full cycle enumeration, structured
//! diagnostics, a suggested disable set), then reproduce Figure 1 in
//! the flit simulator — once with looping routes (deadlock, with the
//! circular wait printed) and once with dimension-order routing
//! (completes).
//!
//! ```text
//! cargo run --release --example deadlock_audit
//! ```

use fractanet::deadlock::verify_deadlock_free;
use fractanet::prelude::*;
use fractanet::route::ringroute::ring_clockwise_routes;
use fractanet::route::treeroute::updown_routeset;
use fractanet::System;

fn main() {
    println!("static channel-dependency audit (Dally & Seitz)\n");
    let systems = [
        ("2x2 mesh / XY", System::mesh(2, 2)),
        ("6x6 mesh / XY", System::mesh(6, 6)),
        ("tetrahedron / direct", System::tetrahedron()),
        ("4-ring / shortest", System::ring(4)),
        ("6-ring / shortest", System::ring(6)),
        ("3-cube / e-cube", System::hypercube(3, 6)),
        ("4-2 fat tree / static", System::fat_tree(64, 4, 2)),
        ("fat fractahedron N2", System::fat_fractahedron(2)),
        ("thin fractahedron N2", System::thin_fractahedron(2, false)),
        ("thin fracta N2 +fanout", System::thin_fractahedron(2, true)),
        ("binary tree d3", System::binary_tree(3, 2)),
    ];
    for (label, sys) in &systems {
        match verify_deadlock_free(sys.net(), sys.route_set()) {
            Ok(cdg) => println!(
                "  {:<24} deadlock-free  ({} dependencies, all acyclic)",
                label,
                cdg.dependency_count()
            ),
            Err(report) => println!(
                "  {:<24} CAN DEADLOCK   (cycle of {} channels)",
                label,
                report.cycle.len()
            ),
        }
    }

    // up*/down* on the hypercube: the Fig 2 discipline.
    let h = Hypercube::new(3, 1, 6).unwrap();
    let rs = updown_routeset(h.net(), h.end_nodes(), h.router(0));
    let verdict = verify_deadlock_free(h.net(), &rs).is_ok();
    println!(
        "  {:<24} {}",
        "3-cube / up*down*",
        if verdict {
            "deadlock-free  (Fig 2 discipline)"
        } else {
            "CAN DEADLOCK"
        }
    );

    // The same verdict, but as the lint subsystem reports it: every
    // elementary CDG cycle enumerated, plus a disable set that would
    // break them (`fractanet lint ring:4` gives the same output).
    println!("\nstatic lint of the Fig 1 ring tables (fractanet lint ring:4):\n");
    let ring = Ring::new(4, 1, 6).unwrap();
    let cw =
        RouteSet::from_table(ring.net(), ring.end_nodes(), &ring_clockwise_routes(&ring)).unwrap();
    let report = Linter::new(ring.net(), ring.end_nodes())
        .with_subject("fig1 ring, clockwise routes")
        .check(&cw);
    print!("{report}");
    assert!(
        report.by_rule(RuleId::L3CdgCycles).next().is_some(),
        "the Fig 1 ring must trip the cycle rule"
    );

    println!("\ndynamic reproduction of Figure 1 (4-router loop, wormhole):\n");
    let cfg = SimConfig {
        packet_flits: 32,
        buffer_depth: 2,
        max_cycles: 10_000,
        stall_threshold: 200,
        ..SimConfig::default()
    };
    let res = Engine::new(ring.net(), &cw, cfg.clone()).run(Workload::fig1_ring(4));
    match &res.deadlock {
        Some(dl) => {
            println!(
                "  clockwise routing: DEADLOCK at cycle {} with {} packets stuck;",
                dl.cycle, dl.stuck_packets
            );
            println!("  circular wait over channels:");
            for ch in &dl.cycle_channels {
                println!(
                    "    {} -> {}",
                    ring.net().label(ring.net().channel_src(*ch)),
                    ring.net().label(ring.net().channel_dst(*ch))
                );
            }
        }
        None => println!("  unexpected: clockwise routing completed"),
    }

    let mesh = Mesh2D::new(2, 2, 1, 6).unwrap();
    let xy = RouteSet::from_table(
        mesh.net(),
        mesh.end_nodes(),
        &fractanet::route::dor::mesh_xy_routes(&mesh),
    )
    .unwrap();
    let wl = Workload::Scripted(vec![(0, 0, 3), (0, 1, 2), (0, 2, 1), (0, 3, 0)]);
    let res = Engine::new(mesh.net(), &xy, cfg).run(wl);
    println!(
        "\n  same shape as a 2x2 mesh under XY routing: {} ({} packets delivered in {} cycles)",
        if res.deadlock.is_none() {
            "completes"
        } else {
            "deadlocked?!"
        },
        res.delivered,
        res.cycles
    );
    println!("\n  \"routes A and C would be allowed, but routes B and D would be\n   disallowed, thus preventing the deadlock situation.\"  — §2");
}
