//! Dual-fabric fault tolerance (§1): "Full network fault-tolerance can
//! be provided by configuring pairs of router fabrics with dual-ported
//! nodes."
//!
//! Builds paired X/Y fat-fractahedron fabrics, injects escalating
//! faults into X, and shows connectivity surviving through failover —
//! then kills a cable *live* inside a wormhole simulation and watches
//! retry, certified self-healing, and dual-fabric failover deliver
//! every transfer — and finally demonstrates the router ASIC's
//! path-disable logic rejecting a corrupted routing-table entry (§2.4).
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use fractanet::graph::PortId;
use fractanet::prelude::*;
use fractanet::servernet::faults::surviving_pair_fraction;
use fractanet::servernet::{DualFabric, RouterAsic};
use fractanet::topo::{Fractahedron, Topology};
use fractanet::System;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("dual-fabric fault tolerance on the 64-node fat fractahedron\n");
    let mut pair = DualFabric::new(Fractahedron::paper_fat_64);
    let mut rng = StdRng::seed_from_u64(1996);

    println!(
        "{:<28} {:>14} {:>14} {:>10}",
        "faults injected into X", "X-only alive", "dual alive", "failovers"
    );
    for round in 0..6 {
        let x_alone = surviving_pair_fraction(pair.x.net(), &pair.x_faults, pair.x.end_nodes());
        let dual = pair.surviving_pair_fraction();
        println!(
            "{:<28} {:>13.1}% {:>13.1}% {:>10}",
            format!("{} links + {} routers", 2 * round, round),
            100.0 * x_alone,
            100.0 * dual,
            pair.failover_pair_count()
        );
        // Escalate: two more dead cables and one more dead router.
        let extra = FaultSet::random(pair.x.net(), 2, 1, &mut rng);
        merge(&mut pair.x_faults, extra, pair.x.net());
    }
    assert!(
        (pair.surviving_pair_fraction() - 1.0).abs() < f64::EPSILON,
        "Y fabric must mask everything while it is healthy"
    );
    println!("\nwith the Y fabric healthy, every pair stays connected — the paper's");
    println!("\"pairs of router fabrics with dual-ported nodes\" configuration.\n");

    // Live fault injection: kill a cable mid-simulation and recover.
    println!("live fault injection (wormhole simulation, 0.2 offered load):");
    let sys = System::fat_fractahedron(2);
    let victim = sys
        .net()
        .links()
        .find(|&l| {
            let info = sys.net().link(l);
            sys.net().is_router(info.a.0) && sys.net().is_router(info.b.0)
        })
        .expect("an inter-router cable");
    let retry = RetryPolicy {
        ack_timeout: 32,
        max_retries: 5,
        backoff_base: 16,
        jitter_seed: 7,
    };
    let cfg_x = SimConfig {
        packet_flits: 16,
        max_cycles: 24_000,
        stall_threshold: 8_000,
        retry,
        ..SimConfig::default()
    }
    .with_fault(FaultEvent::kill_link(victim, 3_000));
    let x = FabricSim {
        net: sys.net(),
        routes: sys.route_set(),
        ends: sys.end_nodes(),
        cfg: cfg_x,
        heal: true, // regenerate + certify tables around the dead cable
        vc: None,
    };
    let y = FabricSim {
        net: sys.net(),
        routes: sys.route_set(),
        ends: sys.end_nodes(),
        cfg: SimConfig {
            packet_flits: 16,
            max_cycles: 24_000,
            ..SimConfig::default()
        },
        heal: false,
        vc: None,
    };
    let workload = Workload::Bernoulli {
        injection_rate: 0.2,
        pattern: DstPattern::Uniform,
        until_cycle: 6_000,
    };
    let out = run_with_failover(x, y, workload);
    let r = &out.x.recovery;
    println!("  cable {victim:?} killed at cycle 3000 under load:");
    println!(
        "  {} worms torn down, {} retries, {} certified repair(s) installed",
        r.dropped_worms, r.retries, r.repairs_installed
    );
    if let Some(t) = r.time_to_recover {
        println!("  first retried transfer delivered {t} cycles after the fault");
    }
    println!(
        "  {} transfers failed over to Y; total delivery {}/{} ({:.2}%)",
        out.failovers,
        out.total_delivered(),
        out.total_generated(),
        100.0 * out.delivery_ratio()
    );
    assert!(
        out.is_recovered(),
        "retry + healing + failover must deliver everything"
    );
    println!();

    // Path-disable logic under table corruption (§2.4).
    println!("router ASIC path-disable demonstration:");
    let mut asic = RouterAsic::new(6, 64);
    asic.program(7, PortId(5)); // destination 7 normally ascends
    asic.disable_turn(PortId(5), PortId(5)); // never bounce the up port back up
    println!("  table[7] = port 5; disable turn (in 5 -> out 5)");
    println!("  forward(in 0, dest 7) = {:?}", asic.forward(PortId(0), 7));
    asic.corrupt(7, PortId(5));
    println!("  ... after a fault corrupts the table, a packet arriving on port 5:");
    println!("  forward(in 5, dest 7) = {:?}", asic.forward(PortId(5), 7));
    println!("\n\"The ServerNet routers also have path disable logic that can be set to");
    println!("enforce the elimination of the loops, even if the routing table is");
    println!("corrupted by a fault.\"  — §2.4");
}

/// FaultSet has no union; apply by re-killing (ids are stable).
fn merge(into: &mut FaultSet, from: FaultSet, net: &fractanet::graph::Network) {
    for l in net.links() {
        if !from.link_ok(l) {
            into.kill_link(l);
        }
    }
    for r in net.routers() {
        if !from.router_ok(r) {
            into.kill_router(r);
        }
    }
}
