//! The paper's motivating commercial workload (§3): "for a given
//! database query, we may have an arbitrary set of four CPU nodes
//! trying to communicate with an arbitrary set of four disk controller
//! nodes over an extended period of time. … In commercial applications,
//! it is not possible to know the data access patterns a priori, making
//! static load balancing impossible."
//!
//! We model three concurrent queries (12 CPU→disk flows) and let the
//! *adversary pick the placement* — computed from each network's own
//! worst-contention witness, so every system faces the worst 12-flow
//! placement that exists for it. The fat tree can be forced to put all
//! 12 flows on one link (12:1); the fat fractahedron tops out at 8:1,
//! and the gap shows up as delivered latency. A bulk transfer is also
//! segmented into ServerNet packets to show the in-order interrupt
//! discipline.
//!
//! ```text
//! cargo run --release --example database_cluster
//! ```

use fractanet::metrics::contention::contention_of_channel;
use fractanet::metrics::max_link_contention;
use fractanet::prelude::*;
use fractanet::servernet::packet::segment_transfer;
use fractanet::System;

/// Repeats a query pattern for `repeats` rounds: every CPU sends one
/// packet to its disk controller per round.
fn query_workload(pairs: &[(usize, usize)], repeats: u64, gap: u64) -> Workload {
    let mut script = Vec::new();
    for round in 0..repeats {
        for &(cpu, disk) in pairs {
            script.push((round * gap, cpu, disk));
        }
    }
    Workload::Scripted(script)
}

/// The adversary's placement: the system's own worst-channel witness,
/// topped up to `flows` with spread-out fillers.
fn adversarial_pairs(sys: &System, flows: usize) -> (usize, Vec<(usize, usize)>) {
    let rep = max_link_contention(sys.net(), sys.route_set());
    let (_, mut pairs) = contention_of_channel(sys.net(), sys.route_set(), rep.worst_channel);
    pairs.truncate(flows);
    let n = sys.end_nodes().len();
    let mut s = 0usize;
    while pairs.len() < flows {
        let candidate = (s, (s + n / 2) % n);
        if !pairs
            .iter()
            .any(|&(a, b)| a == candidate.0 || b == candidate.1)
        {
            pairs.push(candidate);
        }
        s += 5;
    }
    (rep.worst, pairs)
}

fn run(label: &str, sys: &System, pairs: &[(usize, usize)]) {
    let cfg = SimConfig::default()
        .with_packet_flits(71) // a full 64-byte ServerNet packet on the wire
        .with_buffer_depth(4)
        .with_max_cycles(400_000);
    let res = sys.simulate(query_workload(pairs, 40, 100), cfg);
    assert!(
        res.deadlock.is_none(),
        "deadlock-free routing must not deadlock"
    );
    println!(
        "  {:<24} avg latency {:>8.1} cy   p95 {:>6} cy   delivered {:>4}/{}",
        label, res.avg_latency, res.p95_latency, res.delivered, res.generated
    );
}

fn main() {
    println!("database query traffic: three queries, 12 CPU->disk flows\n");

    let fat_tree = System::fat_tree(64, 4, 2);
    let fracta = System::fat_fractahedron(2);

    // A benign placement for contrast: CPUs and disks spread evenly.
    let benign: Vec<(usize, usize)> = (0..12).map(|i| (i * 5, (i * 5 + 32) % 64)).collect();

    for (name, sys) in [("4-2 fat tree", &fat_tree), ("fat fractahedron", &fracta)] {
        let (worst, adversarial) = adversarial_pairs(sys, 12);
        println!("{name} (worst any-link contention {worst}:1):");
        run("benign placement", sys, &benign);
        run("worst-case placement", sys, &adversarial);
        println!();
    }
    println!(
        "the adversary can force 12 fat-tree flows through one link (12:1), but\n\
         no fractahedral placement exceeds 8:1 — the Table 2 contention gap as\n\
         queueing delay.\n"
    );

    // The ServerNet protocol detail that forces fixed-path routing:
    // a disk read completion is data packets followed by an interrupt
    // that must not overtake them.
    println!("segmenting a 200-byte disk read completion into wire packets:");
    let packets = segment_transfer(5, 60, 0, &[0u8; 200]);
    for (i, p) in packets.iter().enumerate() {
        println!(
            "  packet {i}: {:?} {} payload bytes, {} bytes on the wire",
            p.kind,
            p.payload.len(),
            p.wire_len()
        );
    }
    println!(
        "\nin-order delivery is guaranteed because every (src,dst) pair uses one fixed path;\n\
         the trailing Interrupt cannot pass the Write packets (§3.3)."
    );
}
