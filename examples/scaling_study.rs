//! Scaling study: "The topology scales to any number of nodes, and
//! allows for tradeoffs between cost and performance" (§4).
//!
//! Plans thin and fat fractahedral systems from 16 to 65536 CPUs using
//! the closed-form hardware bills (validated against constructed
//! networks in the library's tests), then builds the paper-scale
//! configurations and measures them for real.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use fractanet::sizing::{bill, capacity, plan, Requirement};
use fractanet::topo::Variant;
use fractanet::System;

fn main() {
    println!("fractahedral scaling (with CPU-pair fan-out level)\n");
    println!(
        "{:<8} {:<3} {:<6} {:>9} {:>9} {:>8} {:>10} {:>10}",
        "CPUs", "N", "kind", "routers", "cables", "delay", "bisection", "routers/CPU"
    );
    for levels in 1..=5usize {
        let cpus = capacity(levels, true);
        for variant in [Variant::Thin, Variant::Fat] {
            let b = bill(variant, levels, true);
            println!(
                "{:<8} {:<3} {:<6} {:>9} {:>9} {:>8} {:>10} {:>10.2}",
                cpus,
                levels,
                format!("{variant:?}"),
                b.total_routers(),
                b.cables,
                b.max_delay,
                b.bisection,
                b.total_routers() as f64 / cpus as f64
            );
        }
    }

    println!("\nthe cost/performance dial: requirements pick the variant");
    for (cpus, min_bis) in [(128usize, 1u64), (128, 10), (1024, 1), (1024, 30)] {
        let opts = plan(Requirement {
            cpus,
            min_bisection_links: min_bis,
            fanout: true,
        });
        match opts.first() {
            Some(best) => println!(
                "  {cpus} CPUs, ≥{min_bis} bisection links → {:?} N{} ({} routers, {} cables)",
                best.variant,
                best.levels,
                best.total_routers(),
                best.cables
            ),
            None => println!("  {cpus} CPUs, ≥{min_bis} bisection links → no configuration"),
        }
    }

    // Ground truth: build the 64-node systems and measure.
    println!("\nclosed forms vs measured (64-node, direct attach):");
    for (label, sys, variant) in [
        ("thin", System::thin_fractahedron(2, false), Variant::Thin),
        ("fat", System::fat_fractahedron(2), Variant::Fat),
    ] {
        let formula = bill(variant, 2, false);
        let measured = sys.analyze();
        println!(
            "  {label}: routers {} = {} ✓, bisection {} = {} ✓, max delay {} = {} ✓",
            formula.total_routers(),
            measured.routers,
            formula.bisection,
            measured.bisection_links,
            formula.max_delay,
            measured.max_hops
        );
        assert_eq!(formula.total_routers(), measured.routers);
        assert_eq!(formula.bisection, measured.bisection_links);
        assert_eq!(formula.max_delay, measured.max_hops);
    }
}
